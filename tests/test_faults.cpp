// Fault injection, failure detection, and control-deterministic recovery.
//
// Covers the full robustness stack: deterministic message fates and crash
// calendars (sim/fault.hpp), ack/timeout/retransmit delivery (sim/reliable.hpp),
// lease-based failure detection and replacement-shard replay
// (dcr/runtime.cpp), and graceful aborts on determinism violations.  The
// headline property, mirroring the paper's determinism guarantees: a run with
// drops and a mid-flight shard crash realizes the *same task graph* as a
// fault-free run.
#include <gtest/gtest.h>

#include <vector>

#include "apps/circuit.hpp"
#include "apps/stencil.hpp"
#include "common/philox.hpp"
#include "dcr/runtime.hpp"
#include "dcr_fuzz_programs.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "sim/reliable.hpp"

namespace dcr::core {
namespace {

using apps::CircuitConfig;
using apps::StencilConfig;
using apps::make_circuit_app;
using apps::make_stencil_app;
using apps::register_circuit_functions;
using apps::register_stencil_functions;

sim::MachineConfig cluster(std::size_t nodes) {
  return {.num_nodes = nodes,
          .compute_procs_per_node = 1,
          .network = {.alpha = us(1), .ns_per_byte = 0.1, .local_latency = ns(50)}};
}

// ---------------------------------------------------------------- sim layer

TEST(FaultPlan, MessageFatesAreDeterministic) {
  sim::FaultConfig cfg;
  cfg.seed = 7;
  cfg.drop_rate = 0.2;
  cfg.jitter_rate = 0.5;
  sim::FaultPlan a(cfg), b(cfg);
  bool any_drop = false, any_jitter = false;
  for (std::uint64_t seq = 0; seq < 1000; ++seq) {
    const auto fa = a.classify(seq, NodeId(0), NodeId(1), 0);
    const auto fb = b.classify(seq, NodeId(0), NodeId(1), 0);
    EXPECT_EQ(fa.drop, fb.drop);
    EXPECT_EQ(fa.extra_delay, fb.extra_delay);
    any_drop = any_drop || fa.drop;
    any_jitter = any_jitter || fa.extra_delay > 0;
  }
  EXPECT_TRUE(any_drop);
  EXPECT_TRUE(any_jitter);
  // Fates are random-access: querying out of order gives the same answers.
  const auto f42 = a.classify(42, NodeId(0), NodeId(1), 0);
  const auto g42 = b.classify(42, NodeId(0), NodeId(1), 0);
  EXPECT_EQ(f42.drop, g42.drop);
  EXPECT_EQ(f42.extra_delay, g42.extra_delay);
}

TEST(FaultPlan, OutageWindowsMakeNodesDark) {
  sim::FaultConfig cfg;
  cfg.outages.push_back({NodeId(1), us(10), us(20)});
  sim::FaultPlan plan(cfg);
  EXPECT_FALSE(plan.node_dark(NodeId(1), us(5)));
  EXPECT_TRUE(plan.node_dark(NodeId(1), us(15)));
  EXPECT_FALSE(plan.node_dark(NodeId(1), us(20)));
  EXPECT_FALSE(plan.node_dark(NodeId(0), us(15)));
}

TEST(ReliableDelivery, DropsAreRetransmittedUntilDelivered) {
  sim::Machine machine(cluster(2));
  sim::FaultConfig fcfg;
  fcfg.seed = 11;
  fcfg.drop_rate = 0.3;  // drop data AND acks aggressively
  sim::FaultPlan plan(fcfg);
  machine.install_faults(plan);

  const std::size_t kMessages = 200;
  std::size_t delivered = 0, acked = 0, failed = 0;
  for (std::size_t i = 0; i < kMessages; ++i) {
    auto t = machine.reliable()->transfer(NodeId(0), NodeId(1), 256);
    t.delivered.on_trigger([&] { ++delivered; });
    t.acked.on_trigger([&] { ++acked; });
    t.failed.on_trigger([&] { ++failed; });
  }
  machine.sim().run();
  EXPECT_EQ(delivered, kMessages);  // every payload eventually lands
  EXPECT_EQ(acked, kMessages);      // every sender eventually learns it
  EXPECT_EQ(failed, 0u);
  EXPECT_GT(machine.reliable()->stats().retransmits, 0u);
  EXPECT_GT(plan.stats().drops, 0u);
}

TEST(ReliableDelivery, GivesUpOnPermanentlyDarkDestination) {
  sim::Machine machine(cluster(2));
  sim::FaultConfig fcfg;
  fcfg.crashes.push_back({NodeId(1), us(0)});
  sim::FaultPlan plan(fcfg);
  machine.install_faults(plan);

  bool failed = false;
  std::vector<std::pair<NodeId, NodeId>> give_ups;
  machine.reliable()->on_give_up(
      [&](NodeId s, NodeId d, SimTime) { give_ups.push_back({s, d}); });
  machine.sim().schedule(us(1), [&] {
    auto t = machine.reliable()->transfer(NodeId(0), NodeId(1), 64);
    t.failed.on_trigger([&] { failed = true; });
  });
  machine.sim().run();
  EXPECT_TRUE(failed);
  ASSERT_EQ(give_ups.size(), 1u);
  EXPECT_EQ(give_ups[0].second, NodeId(1));
  EXPECT_EQ(machine.reliable()->stats().give_ups, 1u);
}

TEST(FaultPlan, StragglerWindowStretchesProcessorWork) {
  sim::Machine machine(cluster(1));
  sim::FaultConfig fcfg;
  fcfg.slowdowns.push_back({NodeId(0), us(0), us(100), 4.0});
  sim::FaultPlan plan(fcfg);
  machine.install_faults(plan);
  SimTime done_at = 0;
  machine.analysis_proc(NodeId(0))
      .enqueue(us(10))
      .on_trigger([&] { done_at = machine.sim().now(); });
  machine.sim().run();
  EXPECT_EQ(done_at, us(40));  // 4x inside the window
}

// --------------------------------------------------- crash -> detect -> recover

struct FaultHarness {
  sim::Machine machine;
  sim::FaultPlan plan;
  FunctionRegistry functions;
  DcrRuntime runtime;

  FaultHarness(std::size_t nodes, sim::FaultConfig fcfg, DcrConfig cfg = {})
      : machine(cluster(nodes)), plan(std::move(fcfg)), runtime(machine, functions, [&cfg] {
          cfg.record_task_graph = true;
          return cfg;
        }()) {
    machine.install_faults(plan);
  }
};

rt::TaskGraph stencil_reference(const StencilConfig& scfg, std::size_t nodes,
                                SimTime* makespan = nullptr) {
  sim::Machine machine(cluster(nodes));
  FunctionRegistry functions;
  const auto fns = register_stencil_functions(functions, 1.0);
  DcrConfig cfg;
  cfg.record_task_graph = true;
  DcrRuntime rt(machine, functions, cfg);
  const DcrStats stats = rt.execute(make_stencil_app(scfg, fns));
  EXPECT_TRUE(stats.completed);
  if (makespan) *makespan = stats.makespan;
  return rt.realized_graph().transitive_closure();
}

TEST(FaultRecovery, StencilSurvivesDropsAndShardCrash) {
  const StencilConfig scfg{.cells_per_tile = 100, .tiles = 8, .steps = 6};
  const std::size_t nodes = 4;
  SimTime fault_free_makespan = 0;
  const rt::TaskGraph reference = stencil_reference(scfg, nodes, &fault_free_makespan);
  ASSERT_GT(fault_free_makespan, 0u);

  // 1% message drops plus one whole-shard crash mid-run (the acceptance
  // scenario for this robustness layer).
  sim::FaultConfig fcfg;
  fcfg.seed = 3;
  fcfg.drop_rate = 0.01;
  fcfg.crashes.push_back({NodeId(1), fault_free_makespan / 2});
  FaultHarness h(nodes, fcfg);
  const auto fns = register_stencil_functions(h.functions, 1.0);
  const DcrStats stats = h.runtime.execute(make_stencil_app(scfg, fns));

  EXPECT_TRUE(stats.completed) << stats.abort_message;
  EXPECT_FALSE(stats.aborted);
  EXPECT_FALSE(stats.determinism_violation);
  EXPECT_EQ(stats.failures_detected, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  ASSERT_EQ(stats.failures.size(), 1u);
  const FailureReport& rep = stats.failures[0];
  EXPECT_EQ(rep.node, NodeId(1));
  EXPECT_TRUE(rep.recovered);
  EXPECT_GT(rep.detected_at, rep.crashed_at);
  EXPECT_GE(rep.recovered_at, rep.detected_at);
  EXPECT_FALSE(rep.describe().empty());
  EXPECT_GT(stats.messages_dropped, 0u);
  EXPECT_GT(stats.retransmits, 0u);
  // Faults cost time, never correctness: same realized partial order.
  EXPECT_GE(stats.makespan, fault_free_makespan);
  EXPECT_TRUE(reference.same_partial_order(h.runtime.realized_graph().transitive_closure()));
}

TEST(FaultRecovery, CircuitSurvivesShardCrash) {
  const CircuitConfig ccfg{.nodes_per_piece = 100,
                           .wires_per_piece = 400,
                           .pieces = 4,
                           .steps = 5};
  const std::size_t nodes = 4;

  SimTime fault_free_makespan = 0;
  rt::TaskGraph reference;
  {
    sim::Machine machine(cluster(nodes));
    FunctionRegistry functions;
    const auto fns = register_circuit_functions(functions, 1.0);
    DcrConfig cfg;
    cfg.record_task_graph = true;
    DcrRuntime rt(machine, functions, cfg);
    const DcrStats stats = rt.execute(make_circuit_app(ccfg, fns));
    ASSERT_TRUE(stats.completed);
    fault_free_makespan = stats.makespan;
    reference = rt.realized_graph().transitive_closure();
  }

  sim::FaultConfig fcfg;
  fcfg.seed = 17;
  fcfg.crashes.push_back({NodeId(2), fault_free_makespan / 2});
  FaultHarness h(nodes, fcfg);
  const auto fns = register_circuit_functions(h.functions, 1.0);
  const DcrStats stats = h.runtime.execute(make_circuit_app(ccfg, fns));

  EXPECT_TRUE(stats.completed) << stats.abort_message;
  EXPECT_EQ(stats.failures_detected, 1u);
  EXPECT_EQ(stats.recoveries, 1u);
  EXPECT_TRUE(stats.failures.at(0).recovered);
  EXPECT_TRUE(reference.same_partial_order(h.runtime.realized_graph().transitive_closure()));
}

TEST(FaultRecovery, RecoveredShardReportsCommittedProgress) {
  const StencilConfig scfg{.cells_per_tile = 100, .tiles = 8, .steps = 6};
  SimTime fault_free_makespan = 0;
  (void)stencil_reference(scfg, 4, &fault_free_makespan);

  sim::FaultConfig fcfg;
  fcfg.crashes.push_back({NodeId(1), fault_free_makespan / 2});
  FaultHarness h(4, fcfg);
  const auto fns = register_stencil_functions(h.functions, 1.0);
  const DcrStats stats = h.runtime.execute(make_stencil_app(scfg, fns));
  ASSERT_EQ(stats.failures.size(), 1u);
  // A mid-run crash happens after real progress: the report carries the
  // committed frontier the replacement fast-forwarded through.
  EXPECT_GT(stats.failures[0].committed_ops, 0u);
  EXPECT_GT(stats.failures[0].committed_api_calls, 0u);
}

TEST(FaultRecovery, DetectionWithoutAutoRecoverAbortsGracefully) {
  const StencilConfig scfg{.cells_per_tile = 100, .tiles = 8, .steps = 6};
  SimTime fault_free_makespan = 0;
  (void)stencil_reference(scfg, 4, &fault_free_makespan);

  sim::FaultConfig fcfg;
  fcfg.crashes.push_back({NodeId(1), fault_free_makespan / 2});
  DcrConfig cfg;
  cfg.auto_recover = false;
  FaultHarness h(4, fcfg, cfg);
  const auto fns = register_stencil_functions(h.functions, 1.0);
  const DcrStats stats = h.runtime.execute(make_stencil_app(scfg, fns));
  // The run terminates (no hang) with a structured report instead of success.
  EXPECT_FALSE(stats.completed);
  EXPECT_TRUE(stats.aborted);
  EXPECT_NE(stats.abort_message.find("shard failure detected"), std::string::npos);
  ASSERT_EQ(stats.failures.size(), 1u);
  EXPECT_FALSE(stats.failures[0].recovered);
}

TEST(FaultRecovery, TransientOutageRidesOnRetries) {
  const StencilConfig scfg{.cells_per_tile = 100, .tiles = 8, .steps = 6};
  const std::size_t nodes = 4;
  SimTime fault_free_makespan = 0;
  const rt::TaskGraph reference = stencil_reference(scfg, nodes, &fault_free_makespan);

  // A short NIC blackout, well inside the retry budget: no failure should be
  // declared, and the graph is unchanged.
  sim::FaultConfig fcfg;
  fcfg.outages.push_back({NodeId(2), fault_free_makespan / 4, fault_free_makespan / 4 + us(40)});
  FaultHarness h(nodes, fcfg);
  const auto fns = register_stencil_functions(h.functions, 1.0);
  const DcrStats stats = h.runtime.execute(make_stencil_app(scfg, fns));
  EXPECT_TRUE(stats.completed) << stats.abort_message;
  EXPECT_EQ(stats.failures_detected, 0u);
  EXPECT_TRUE(reference.same_partial_order(h.runtime.realized_graph().transitive_closure()));
}

// ---------------------------------------------------- determinism violations

TEST(FaultRecovery, DeterminismViolationUpgradesToGracefulAbort) {
  sim::Machine machine(cluster(4));
  FunctionRegistry functions;
  const FunctionId a = functions.register_simple("algo0", us(1), 0.0);
  const FunctionId b = functions.register_simple("algo1", us(1), 0.0);
  DcrRuntime rt(machine, functions, {});
  const DcrStats stats = rt.execute([&](Context& ctx) {
    TaskLaunch launch;
    launch.fn = (ctx.shard_id().value % 2 == 0) ? a : b;  // shard-dependent!
    ctx.launch(launch);
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.determinism_violation);
  EXPECT_TRUE(stats.aborted);
  EXPECT_FALSE(stats.completed);
  // The abort names the first divergent API call.
  EXPECT_NE(stats.abort_message.find("launch"), std::string::npos);
  EXPECT_NE(stats.abort_message.find("determinism"), std::string::npos);
}

TEST(FaultRecovery, HaltOnViolationCanBeDisabled) {
  sim::Machine machine(cluster(2));
  FunctionRegistry functions;
  const FunctionId fn = functions.register_simple("t", us(1), 0.0);
  DcrConfig cfg;
  cfg.halt_on_violation = false;
  DcrRuntime rt(machine, functions, cfg);
  const DcrStats stats = rt.execute([&](Context& ctx) {
    TaskLaunch launch;
    launch.fn = fn;
    launch.args = {static_cast<std::int64_t>(ctx.shard_id().value)};
    ctx.launch(launch);
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.determinism_violation);
  EXPECT_FALSE(stats.aborted);  // legacy behaviour: flag only, run completes
  EXPECT_TRUE(stats.completed);
}

TEST(DeterminismChecker, ExposesCheckAndViolationCounts) {
  sim::Machine machine(cluster(2));
  FunctionRegistry functions;
  const FunctionId fn = functions.register_simple("t", us(1), 0.0);
  DcrConfig cfg;
  cfg.halt_on_violation = false;
  DcrRuntime rt(machine, functions, cfg);
  const DcrStats stats = rt.execute([&](Context& ctx) {
    TaskLaunch launch;
    launch.fn = fn;
    launch.args = {static_cast<std::int64_t>(ctx.shard_id().value)};
    ctx.launch(launch);
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.determinism_violation);
  EXPECT_GT(stats.determinism_checks, 0u);
}

// ------------------------------------------------------- zero overhead when off

TEST(FaultRecovery, NoFaultPlanMeansNoOverhead) {
  auto run = [] {
    sim::Machine machine(cluster(4));
    FunctionRegistry functions;
    const auto fns = register_stencil_functions(functions, 1.0);
    DcrRuntime rt(machine, functions, {});
    const DcrStats stats = rt.execute(
        make_stencil_app({.cells_per_tile = 100, .tiles = 8, .steps = 4}, fns));
    EXPECT_TRUE(stats.completed);
    EXPECT_EQ(stats.retransmits, 0u);
    EXPECT_EQ(stats.messages_dropped, 0u);
    EXPECT_EQ(stats.failures_detected, 0u);
    EXPECT_EQ(machine.network().stats().lost_messages, 0u);
    return std::make_pair(stats.makespan, stats.messages);
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);  // bit-identical timing without a plan
  EXPECT_EQ(a.second, b.second);
}

// ------------------------------------------------------------------ fuzzing

// Random control programs (same shape as test_fuzz_dcr.cpp, trimmed) executed
// under random fault plans: drops + a mid-run crash must reproduce the
// fault-free task graph.
struct RandomProgram {
  std::size_t tiles;
  struct Op {
    bool is_fill;
    std::size_t part;   // 0: equal partition, 1: halo partition
    std::size_t field;  // 0 or 1
    bool reduce;
  };
  std::vector<Op> ops;
};

RandomProgram generate_program(Philox4x32& rng, std::size_t tiles) {
  RandomProgram p;
  p.tiles = tiles;
  const std::size_t num_ops = 6 + rng.next_below(8);
  for (std::size_t i = 0; i < num_ops; ++i) {
    RandomProgram::Op op;
    op.is_fill = rng.next_below(5) == 0;
    op.part = rng.next_below(2);
    op.field = rng.next_below(2);
    op.reduce = rng.next_below(4) == 0;
    p.ops.push_back(op);
  }
  return p;
}

ApplicationMain materialize_program(const RandomProgram& p, FunctionId fn) {
  return [p, fn](Context& ctx) {
    using namespace rt;
    FieldSpaceId fs = ctx.create_field_space();
    std::vector<FieldId> fields{ctx.allocate_field(fs, 8, "a"),
                                ctx.allocate_field(fs, 8, "b")};
    const RegionTreeId tree =
        ctx.create_region(Rect::r1(0, static_cast<std::int64_t>(p.tiles) * 32 - 1), fs);
    const IndexSpaceId root = ctx.root(tree);
    const PartitionId equal = ctx.partition_equal(root, p.tiles);
    const PartitionId halo = ctx.partition_with_halo(root, p.tiles, 2);
    const Rect domain = Rect::r1(0, static_cast<std::int64_t>(p.tiles) - 1);
    for (const auto& op : p.ops) {
      if (op.is_fill) {
        ctx.fill(root, {fields[op.field]});
        continue;
      }
      IndexLaunch l;
      l.fn = fn;
      l.domain = domain;
      l.sharding = ShardingRegistry::blocked();
      l.requirements.push_back(rt::GroupRequirement::on_partition(
          equal, {fields[op.field]}, rt::Privilege::ReadWrite));
      l.requirements.push_back(rt::GroupRequirement::on_partition(
          halo, {fields[1 - op.field]},
          op.reduce ? rt::Privilege::Reduce : rt::Privilege::ReadOnly, op.reduce ? 1 : 0));
      ctx.index_launch(l);
    }
    ctx.execution_fence();
  };
}

class FaultFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultFuzz, RecoveredRunsMatchFaultFreeGraph) {
  const std::uint64_t seed = GetParam();
  // Label-derived seed: -L faults explores a program space disjoint from
  // -L spy's, instead of both sweeping 0..N (see tests/README.md).
  Philox4x32 rng(fuzz::seed_for_label("faults", seed), /*stream=*/21);
  const RandomProgram program = generate_program(rng, /*tiles=*/6);
  const std::size_t nodes = 3;

  SimTime fault_free_makespan = 0;
  rt::TaskGraph reference;
  {
    sim::Machine machine(cluster(nodes));
    FunctionRegistry functions;
    const FunctionId fn = functions.register_simple("t", us(1), 1.0);
    DcrConfig cfg;
    cfg.record_task_graph = true;
    DcrRuntime rt(machine, functions, cfg);
    const DcrStats stats = rt.execute(materialize_program(program, fn));
    ASSERT_TRUE(stats.completed);
    fault_free_makespan = stats.makespan;
    reference = rt.realized_graph().transitive_closure();
  }
  ASSERT_TRUE(reference.is_acyclic());

  // Random fault plan: seeded drops plus a crash at a seed-dependent point.
  // The plan uses its own label so message fates decorrelate from the
  // generated program.
  sim::FaultConfig fcfg;
  fcfg.seed = fuzz::seed_for_label("faults-plan", seed);
  fcfg.drop_rate = 0.005;
  const NodeId victim(static_cast<std::uint32_t>(1 + seed % (nodes - 1)));
  const SimTime crash_at = fault_free_makespan * (1 + seed % 3) / 4;
  fcfg.crashes.push_back({victim, crash_at});

  FaultHarness h(nodes, fcfg);
  const FunctionId fn = h.functions.register_simple("t", us(1), 1.0);
  const DcrStats stats = h.runtime.execute(materialize_program(program, fn));
  ASSERT_TRUE(stats.completed)
      << "seed " << seed << ": " << stats.abort_message;
  EXPECT_FALSE(stats.determinism_violation) << "seed " << seed;
  EXPECT_EQ(stats.failures_detected, 1u) << "seed " << seed;
  EXPECT_EQ(stats.recoveries, 1u) << "seed " << seed;
  ASSERT_TRUE(reference.same_partial_order(h.runtime.realized_graph().transitive_closure()))
      << "seed " << seed << " victim " << victim.value << " crash_at " << crash_at;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultFuzz, ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace dcr::core
