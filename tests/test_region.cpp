// Unit tests for the region forest, requirements/projections, and the
// dependence oracle — built around the paper's Figure 7/8 stencil layout.
#include <gtest/gtest.h>

#include "runtime/region.hpp"
#include "runtime/requirement.hpp"

namespace dcr::rt {
namespace {

// Build the paper's Figure 8 region tree: a 1-D `cells` region with three
// partitions — owned (disjoint blocks), interior (disjoint, shrunk), and
// ghost (aliased halos).
struct StencilForest {
  RegionForest forest;
  FieldSpaceId fs;
  FieldId state, flux;
  RegionTreeId tree;
  IndexSpaceId cells;
  PartitionId owned, interior, ghost;
  static constexpr std::int64_t kCells = 400;
  static constexpr std::size_t kTiles = 4;

  StencilForest() {
    fs = forest.create_field_space();
    state = forest.allocate_field(fs, 8, "state");
    flux = forest.allocate_field(fs, 8, "flux");
    tree = forest.create_tree(Rect::r1(0, kCells - 1), fs);
    cells = forest.root(tree);
    owned = forest.partition_equal(cells, kTiles);
    // interior: owned blocks shrunk by one on each side of the global domain.
    std::vector<Rect> interior_rects;
    for (std::size_t c = 0; c < kTiles; ++c) {
      Rect r = forest.bounds(forest.subregion(owned, c));
      if (c == 0) r.lo[0] += 1;
      if (c == kTiles - 1) r.hi[0] -= 1;
      interior_rects.push_back(r);
    }
    interior = forest.create_partition(cells, interior_rects, /*disjoint=*/true);
    ghost = forest.partition_with_halo(cells, kTiles, /*halo=*/1);
  }
};

TEST(RegionForest, FieldSpaces) {
  RegionForest f;
  FieldSpaceId fs = f.create_field_space();
  FieldId a = f.allocate_field(fs, 8, "a");
  FieldId b = f.allocate_field(fs, 4, "b");
  EXPECT_EQ(f.field_size(a), 8u);
  EXPECT_EQ(f.field_size(b), 4u);
  EXPECT_EQ(f.field_name(b), "b");
  EXPECT_EQ(f.fields(fs).size(), 2u);
  f.free_field(fs, a);
  EXPECT_EQ(f.fields(fs).size(), 1u);
}

TEST(RegionForest, TreeCreation) {
  StencilForest s;
  EXPECT_EQ(s.forest.bounds(s.cells), Rect::r1(0, 399));
  EXPECT_EQ(s.forest.tree_of(s.cells), s.tree);
  EXPECT_EQ(s.forest.depth(s.cells), 0);
  EXPECT_FALSE(s.forest.parent_partition(s.cells).has_value());
  EXPECT_FALSE(s.forest.tree_destroyed(s.tree));
  s.forest.destroy_tree(s.tree);
  EXPECT_TRUE(s.forest.tree_destroyed(s.tree));
}

TEST(RegionForest, EqualPartitionTilesTheDomain) {
  StencilForest s;
  EXPECT_EQ(s.forest.num_subregions(s.owned), 4u);
  EXPECT_TRUE(s.forest.is_disjoint(s.owned));
  std::uint64_t vol = 0;
  for (std::size_t c = 0; c < 4; ++c) {
    const IndexSpaceId sub = s.forest.subregion(s.owned, c);
    vol += s.forest.bounds(sub).volume();
    EXPECT_EQ(s.forest.color(sub), c);
    EXPECT_EQ(s.forest.depth(sub), 1);
    EXPECT_EQ(*s.forest.parent_partition(sub), s.owned);
  }
  EXPECT_EQ(vol, 400u);
  EXPECT_EQ(s.forest.bounds(s.forest.subregion(s.owned, 0)), Rect::r1(0, 99));
  EXPECT_EQ(s.forest.bounds(s.forest.subregion(s.owned, 3)), Rect::r1(300, 399));
}

TEST(RegionForest, HaloPartitionAliases) {
  StencilForest s;
  EXPECT_FALSE(s.forest.is_disjoint(s.ghost));
  EXPECT_EQ(s.forest.bounds(s.forest.subregion(s.ghost, 0)), Rect::r1(0, 100));
  EXPECT_EQ(s.forest.bounds(s.forest.subregion(s.ghost, 1)), Rect::r1(99, 200));
  EXPECT_EQ(s.forest.bounds(s.forest.subregion(s.ghost, 3)), Rect::r1(299, 399));
}

TEST(RegionForest, AncestryAndLca) {
  StencilForest s;
  const IndexSpaceId o0 = s.forest.subregion(s.owned, 0);
  const IndexSpaceId o1 = s.forest.subregion(s.owned, 1);
  const IndexSpaceId g0 = s.forest.subregion(s.ghost, 0);
  EXPECT_TRUE(s.forest.is_region_ancestor(s.cells, o0));
  EXPECT_FALSE(s.forest.is_region_ancestor(o0, s.cells));
  EXPECT_FALSE(s.forest.is_region_ancestor(o0, o1));
  EXPECT_EQ(s.forest.lowest_common_region(o0, o1), s.cells);
  EXPECT_EQ(s.forest.lowest_common_region(o0, g0), s.cells);
  EXPECT_EQ(s.forest.lowest_common_region(o0, o0), o0);
}

TEST(RegionForest, StructuralDisjointness) {
  StencilForest s;
  const IndexSpaceId o0 = s.forest.subregion(s.owned, 0);
  const IndexSpaceId o1 = s.forest.subregion(s.owned, 1);
  const IndexSpaceId g0 = s.forest.subregion(s.ghost, 0);
  const IndexSpaceId g2 = s.forest.subregion(s.ghost, 2);
  const IndexSpaceId i1 = s.forest.subregion(s.interior, 1);

  // Same disjoint partition, different colors: provable.
  EXPECT_TRUE(s.forest.structurally_disjoint(o0, o1));
  // Same aliased partition: not provable.
  EXPECT_FALSE(s.forest.structurally_disjoint(g0, g2));
  // Different partitions of the same region: never provable, even when the
  // geometry is disjoint (o0=[0,99] vs i1=[100,199]) — this conservatism is
  // exactly why the paper's Figure 10 inserts a fence between owned and ghost.
  EXPECT_FALSE(s.forest.structurally_disjoint(o0, i1));
  EXPECT_FALSE(overlaps(s.forest.bounds(o0), s.forest.bounds(i1)));
  // Ancestor/descendant: overlap.
  EXPECT_FALSE(s.forest.structurally_disjoint(s.cells, o0));
  // Different trees: always disjoint.
  RegionTreeId other = s.forest.create_tree(Rect::r1(0, 399), s.fs);
  EXPECT_TRUE(s.forest.structurally_disjoint(o0, s.forest.root(other)));
}

TEST(RegionForest, NestedPartitions) {
  StencilForest s;
  const IndexSpaceId o0 = s.forest.subregion(s.owned, 0);
  const PartitionId sub = s.forest.partition_equal(o0, 2);
  const IndexSpaceId s0 = s.forest.subregion(sub, 0);
  const IndexSpaceId s1 = s.forest.subregion(sub, 1);
  EXPECT_EQ(s.forest.depth(s0), 2);
  EXPECT_TRUE(s.forest.structurally_disjoint(s0, s1));
  // Sub-pieces of o0 vs sibling o1: diverge at the owned partition.
  const IndexSpaceId o1 = s.forest.subregion(s.owned, 1);
  EXPECT_TRUE(s.forest.structurally_disjoint(s0, o1));
  const PartitionId sub1 = s.forest.partition_equal(o1, 2);
  EXPECT_TRUE(s.forest.structurally_disjoint(s0, s.forest.subregion(sub1, 0)));
  EXPECT_EQ(s.forest.lowest_common_region(s0, s1), o0);
}

TEST(RegionForest, GeometricOverlap) {
  StencilForest s;
  const IndexSpaceId o0 = s.forest.subregion(s.owned, 0);
  const IndexSpaceId g1 = s.forest.subregion(s.ghost, 1);
  EXPECT_TRUE(s.forest.regions_overlap(o0, g1));  // halo reaches into o0
  const IndexSpaceId g3 = s.forest.subregion(s.ghost, 3);
  EXPECT_FALSE(s.forest.regions_overlap(o0, g3));
}

// ---------------------------------------------------------------- projection

TEST(Projection, IdentityMapsDomainPointsToColors) {
  StencilForest s;
  ProjectionRegistry projs;
  const Rect domain = Rect::r1(0, 3);
  for (std::int64_t i = 0; i < 4; ++i) {
    const IndexSpaceId r = projs.apply(ProjectionRegistry::identity(), s.forest, s.owned,
                                       Point::p1(i), domain);
    EXPECT_EQ(r, s.forest.subregion(s.owned, static_cast<std::uint64_t>(i)));
  }
}

TEST(Projection, CustomFunctionalProjection) {
  StencilForest s;
  ProjectionRegistry projs;
  // Neighbor projection: point i -> subregion i+1 mod pieces.
  const ProjectionId shifted = projs.register_projection(
      [](const RegionForest& f, PartitionId p, const Point& pt, const Rect& dom) {
        const std::uint64_t n = f.num_subregions(p);
        return f.subregion(p, (linearize(dom, pt) + 1) % n);
      });
  const IndexSpaceId r = projs.apply(shifted, s.forest, s.owned, Point::p1(3), Rect::r1(0, 3));
  EXPECT_EQ(r, s.forest.subregion(s.owned, 0));
}

TEST(GroupRequirement, ConcretizeAndUpperBound) {
  StencilForest s;
  ProjectionRegistry projs;
  const auto req = GroupRequirement::on_partition(s.owned, {s.state}, Privilege::ReadWrite);
  EXPECT_EQ(req.upper_bound(s.forest), s.cells);
  const Requirement c = req.concretize(s.forest, projs, Point::p1(2), Rect::r1(0, 3));
  EXPECT_EQ(c.region, s.forest.subregion(s.owned, 2));
  EXPECT_EQ(c.privilege, Privilege::ReadWrite);

  const auto single = GroupRequirement::on_region(s.cells, {s.flux}, Privilege::ReadOnly);
  EXPECT_EQ(single.upper_bound(s.forest), s.cells);
  EXPECT_EQ(single.concretize(s.forest, projs, Point::p1(0), Rect::r1(0, 3)).region, s.cells);
}

// -------------------------------------------------------------------- oracle

TEST(Privileges, ConflictMatrix) {
  using enum Privilege;
  EXPECT_FALSE(privileges_conflict(ReadOnly, 0, ReadOnly, 0));
  EXPECT_TRUE(privileges_conflict(ReadOnly, 0, ReadWrite, 0));
  EXPECT_TRUE(privileges_conflict(ReadWrite, 0, ReadWrite, 0));
  EXPECT_TRUE(privileges_conflict(WriteDiscard, 0, ReadOnly, 0));
  EXPECT_FALSE(privileges_conflict(Reduce, 7, Reduce, 7));  // same redop commutes
  EXPECT_TRUE(privileges_conflict(Reduce, 7, Reduce, 8));
  EXPECT_TRUE(privileges_conflict(Reduce, 7, ReadOnly, 0));
  EXPECT_FALSE(privileges_conflict(None, 0, ReadWrite, 0));
}

TEST(Oracle, ThreeStepCheck) {
  StencilForest s;
  const IndexSpaceId o0 = s.forest.subregion(s.owned, 0);
  const IndexSpaceId o1 = s.forest.subregion(s.owned, 1);
  const IndexSpaceId g1 = s.forest.subregion(s.ghost, 1);

  const Requirement w_state_o0{o0, {s.state}, Privilege::ReadWrite, 0};
  const Requirement w_state_o1{o1, {s.state}, Privilege::ReadWrite, 0};
  const Requirement r_state_g1{g1, {s.state}, Privilege::ReadOnly, 0};
  const Requirement w_flux_o0{o0, {s.flux}, Privilege::ReadWrite, 0};
  const Requirement r_state_o0{o0, {s.state}, Privilege::ReadOnly, 0};

  // Disjoint index points: independent.
  EXPECT_FALSE(requirements_conflict(s.forest, w_state_o0, w_state_o1));
  // Overlapping points, common field, writer involved: dependence.
  EXPECT_TRUE(requirements_conflict(s.forest, w_state_o0, r_state_g1));
  // Overlapping points, different fields: independent.
  EXPECT_FALSE(requirements_conflict(s.forest, w_state_o0, w_flux_o0));
  // Overlapping points, common field, both readers: independent.
  EXPECT_FALSE(requirements_conflict(s.forest, r_state_o0, r_state_g1));
  // Symmetry.
  EXPECT_TRUE(requirements_conflict(s.forest, r_state_g1, w_state_o0));
}

TEST(Oracle, MultiFieldRequirements) {
  StencilForest s;
  const IndexSpaceId o0 = s.forest.subregion(s.owned, 0);
  const Requirement both{o0, {s.state, s.flux}, Privilege::ReadWrite, 0};
  const Requirement flux_only{o0, {s.flux}, Privilege::ReadOnly, 0};
  EXPECT_TRUE(requirements_conflict(s.forest, both, flux_only));
}

TEST(Oracle, GroupBoundsConservative) {
  StencilForest s;
  // owned (RW state) vs ghost (RO state): upper bounds are both `cells`,
  // fields and privileges conflict -> may conflict.
  EXPECT_TRUE(group_bounds_may_conflict(s.forest, s.cells, {s.state}, Privilege::ReadWrite, 0,
                                        s.cells, {s.state}, Privilege::ReadOnly, 0));
  // Different fields -> no conflict even on identical bounds.
  EXPECT_FALSE(group_bounds_may_conflict(s.forest, s.cells, {s.state}, Privilege::ReadWrite, 0,
                                         s.cells, {s.flux}, Privilege::ReadWrite, 0));
}

}  // namespace
}  // namespace dcr::rt
