// Golden-graph regression tests: the realized machine-wide task graph of each
// paper workload, exported as canonical DOT (runtime/graph_dump.hpp), diffed
// against a committed golden file.  One golden per application: dynamic
// control replication promises the *same* realized graph at every shard
// count, so the 2-, 8- and 32-shard runs (and the template-replayed stencil)
// all diff against one file.  Mismatches are reported edge-by-edge.
//
// Regenerate after an intentional analysis change with:
//   DCR_UPDATE_GOLDEN=1 ctest -L golden
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <functional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "apps/circuit.hpp"
#include "apps/pennant.hpp"
#include "apps/stencil.hpp"
#include "dcr/runtime.hpp"
#include "runtime/graph_dump.hpp"

#ifndef DCR_GOLDEN_DIR
#define DCR_GOLDEN_DIR "tests/golden"
#endif

namespace dcr {
namespace {

constexpr std::size_t kShardCounts[] = {2, 8, 32};

sim::MachineConfig machine_config(std::size_t nodes) {
  return {.num_nodes = nodes,
          .compute_procs_per_node = 1,
          .network = {.alpha = us(1), .ns_per_byte = 0.1, .local_latency = ns(50)}};
}

// Builds the app (registering its functions), runs it on `shards` shards with
// task-graph recording on, and returns the canonical DOT of the realized
// machine-wide graph.
using AppMaker = std::function<core::ApplicationMain(core::FunctionRegistry&)>;

std::string realized_dot(std::size_t shards, const AppMaker& make, const char* name) {
  sim::Machine machine(machine_config(shards));
  core::FunctionRegistry functions;
  const core::ApplicationMain app = make(functions);
  core::DcrConfig cfg;
  cfg.record_task_graph = true;
  core::DcrRuntime rt(machine, functions, cfg);
  const core::DcrStats stats = rt.execute(app);
  EXPECT_TRUE(stats.completed) << name << " at " << shards << " shards";
  EXPECT_FALSE(stats.determinism_violation) << name << " at " << shards << " shards";
  return rt::to_dot(rt.realized_graph(), nullptr, name);
}

std::string golden_path(const std::string& app) {
  return std::string(DCR_GOLDEN_DIR) + "/" + app + ".dot";
}

bool update_mode() {
  const char* e = std::getenv("DCR_UPDATE_GOLDEN");
  return e != nullptr && std::string(e) != "" && std::string(e) != "0";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return in ? os.str() : std::string();
}

// DOT structure for edge-level diffing: node lines and "a -> b" edge lines.
struct DotGraph {
  std::set<std::string> nodes;
  std::set<std::string> edges;
};

DotGraph parse_dot(const std::string& dot) {
  DotGraph g;
  std::istringstream in(dot);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t arrow = line.find(" -> ");
    if (arrow != std::string::npos) {
      std::string e = line.substr(0, line.rfind(';'));
      // strip leading indentation
      e.erase(0, e.find_first_not_of(" \t"));
      g.edges.insert(e);
    } else if (line.find("[label=") != std::string::npos) {
      std::string n = line.substr(0, line.find(' ', 2));
      n.erase(0, n.find_first_not_of(" \t"));
      g.nodes.insert(n);
    }
  }
  return g;
}

// Diffs `actual` against the golden DOT and fails with a readable edge-level
// report rather than a wall of text.
void expect_matches_golden(const std::string& app, std::size_t shards,
                           const std::string& golden, const std::string& actual) {
  if (golden == actual) return;
  const DotGraph want = parse_dot(golden);
  const DotGraph got = parse_dot(actual);
  std::ostringstream os;
  os << "realized graph for " << app << " at " << shards
     << " shards diverges from " << golden_path(app) << "\n"
     << "  golden: " << want.nodes.size() << " tasks, " << want.edges.size()
     << " edges; actual: " << got.nodes.size() << " tasks, " << got.edges.size()
     << " edges\n";
  auto report = [&os](const char* what, const std::set<std::string>& a,
                      const std::set<std::string>& b) {
    std::vector<std::string> diff;
    for (const std::string& e : a) {
      if (b.find(e) == b.end()) diff.push_back(e);
    }
    if (diff.empty()) return;
    os << "  " << diff.size() << " " << what << ":\n";
    for (std::size_t i = 0; i < diff.size() && i < 20; ++i) {
      os << "    " << diff[i] << "\n";
    }
    if (diff.size() > 20) os << "    ... (" << (diff.size() - 20) << " more)\n";
  };
  report("edges missing (in golden, not produced)", want.edges, got.edges);
  report("edges unexpected (produced, not in golden)", got.edges, want.edges);
  report("tasks missing", want.nodes, got.nodes);
  report("tasks unexpected", got.nodes, want.nodes);
  os << "  (intentional change? regenerate with DCR_UPDATE_GOLDEN=1)";
  ADD_FAILURE() << os.str();
}

// Runs `make` at every shard count and diffs each realized graph against the
// single committed golden — replication invariance plus regression in one.
void check_app(const std::string& app, const AppMaker& make) {
  const std::string path = golden_path(app);
  if (update_mode()) {
    const std::string dot = realized_dot(kShardCounts[0], make, app.c_str());
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << dot;
    out.close();
    std::printf("[golden] regenerated %s\n", path.c_str());
  }
  const std::string golden = read_file(path);
  ASSERT_FALSE(golden.empty()) << "missing golden file " << path
                               << "; generate with DCR_UPDATE_GOLDEN=1";
  for (std::size_t shards : kShardCounts) {
    expect_matches_golden(app, shards, golden, realized_dot(shards, make, app.c_str()));
  }
}

TEST(Golden, Stencil) {
  check_app("stencil", [](core::FunctionRegistry& reg) {
    const auto fns = apps::register_stencil_functions(reg, 1.0);
    return apps::make_stencil_app({.cells_per_tile = 4, .tiles = 8, .steps = 3}, fns);
  });
}

TEST(Golden, StencilTraced) {
  // Template capture/validate/replay must realize the exact graph the fresh
  // analysis does — diffed against the same golden as the untraced run.
  check_app("stencil", [](core::FunctionRegistry& reg) {
    const auto fns = apps::register_stencil_functions(reg, 1.0);
    apps::StencilConfig cfg{.cells_per_tile = 4, .tiles = 8, .steps = 3};
    cfg.use_trace = true;
    return apps::make_stencil_app(cfg, fns);
  });
}

TEST(Golden, Circuit) {
  check_app("circuit", [](core::FunctionRegistry& reg) {
    const auto fns = apps::register_circuit_functions(reg, 1.0);
    return apps::make_circuit_app(
        {.nodes_per_piece = 20, .wires_per_piece = 40, .pieces = 8, .steps = 2}, fns);
  });
}

TEST(Golden, Pennant) {
  check_app("pennant", [](core::FunctionRegistry& reg) {
    const auto fns = apps::register_pennant_functions(reg, 1.0);
    return apps::make_pennant_app({.zones_per_piece = 40, .pieces = 8, .cycles = 2},
                                  fns);
  });
}

}  // namespace
}  // namespace dcr
