// dcr-scope: cross-shard causal tracing, blame/skew reports, live metrics
// exposition, and the regression watchdog (src/scope).
//
// Units: TraceCtx merge semantics, FenceCollective per-rank blame timestamps
// on a raw simulator, blame-ledger reconciliation against dcr-prof's
// always-on FenceWaitNs counters (exact, instant for instant), scope-on/off
// execution equivalence, Prometheus text-format exposition (incl. volatile
// zeroing and cumulative histogram buckets), collect_metrics schema, the
// MetricsExposer tick loop, the localhost HTTP endpoint, the BENCH baseline
// watchdog, and the tolerant prof snapshot diff.  Plus a 100-seed
// scope-on/off equivalence sweep under fault injection + recovery (labelled
// fuzz; everything else runs in check-fast).
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/stencil.hpp"
#include "common/philox.hpp"
#include "dcr/runtime.hpp"
#include "dcr_fuzz_programs.hpp"
#include "exec/thread_runtime.hpp"
#include "prof/diff.hpp"
#include "prof/json.hpp"
#include "scope/baseline.hpp"
#include "scope/context.hpp"
#include "scope/flight.hpp"
#include "scope/http.hpp"
#include "scope/metrics.hpp"
#include "scope/report.hpp"
#include "sim/collective.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "spy/verify.hpp"

namespace dcr::core {
namespace {

using apps::StencilConfig;
using apps::make_stencil_app;
using apps::register_stencil_functions;

sim::MachineConfig cluster(std::size_t nodes) {
  return {.num_nodes = nodes,
          .compute_procs_per_node = 1,
          .network = {.alpha = us(1), .ns_per_byte = 0.1, .local_latency = ns(50)}};
}

// Owns the machine/registry/runtime for one run so tests can interrogate the
// recorder and profiler after execute() returns.
struct Harness {
  sim::Machine machine;
  FunctionRegistry functions;
  DcrRuntime runtime;

  Harness(std::size_t nodes, DcrConfig cfg)
      : machine(cluster(nodes)), runtime(machine, functions, cfg) {}

  const prof::Profiler& prof() const { return runtime.profiler(); }
  const dcr::scope::Recorder* rec() const { return runtime.scope(); }
};

DcrConfig scope_config(bool scope, bool trace = false, bool graph = false) {
  DcrConfig cfg;
  cfg.scope = scope;
  cfg.record_trace = trace;
  cfg.record_task_graph = graph;
  return cfg;
}

DcrStats run_stencil(Harness& h, const StencilConfig& scfg) {
  const auto fns = register_stencil_functions(h.functions, 1.0);
  return h.runtime.execute(make_stencil_app(scfg, fns));
}

std::string snapshot_of(const Harness& h) {
  std::ostringstream os;
  h.prof().write_snapshot_json(os, /*zero_volatile=*/false);
  return os.str();
}

prof::JsonValue parsed(const std::string& text) {
  const prof::JsonParseResult r = prof::parse_json(text);
  EXPECT_TRUE(r.ok()) << r.error << " in: " << text;
  return r.ok() ? *r.value : prof::JsonValue{};
}

// ----------------------------------------------------------- context merge

TEST(ScopeCtx, LatestMergeSemantics) {
  using dcr::scope::TraceCtx;
  using dcr::scope::latest;
  const TraceCtx none{};  // trace 0 = invalid: the identity element
  const TraceCtx early{1, /*span=*/10, /*origin=*/0, /*at=*/100};
  const TraceCtx late{1, /*span=*/11, /*origin=*/1, /*at=*/200};
  const TraceCtx tied{1, /*span=*/12, /*origin=*/2, /*at=*/200};

  EXPECT_FALSE(none.valid());
  EXPECT_EQ(latest(none, early), early);
  EXPECT_EQ(latest(early, none), early);
  // Larger `at` wins regardless of argument order.
  EXPECT_EQ(latest(early, late), late);
  EXPECT_EQ(latest(late, early), late);
  // Ties on `at` break toward the larger origin, again order-independent.
  EXPECT_EQ(latest(late, tied), tied);
  EXPECT_EQ(latest(tied, late), tied);

  // Associative + commutative: every fold order over a permuted set yields
  // the same result — the property that makes tree-merge order irrelevant.
  std::vector<TraceCtx> ctxs = {early, tied, none, late};
  std::sort(ctxs.begin(), ctxs.end(), [](const TraceCtx& a, const TraceCtx& b) {
    return a.span < b.span;
  });
  do {
    TraceCtx acc{};
    for (const TraceCtx& c : ctxs) acc = latest(acc, c);
    EXPECT_EQ(acc, tied);
  } while (std::next_permutation(
      ctxs.begin(), ctxs.end(), [](const TraceCtx& a, const TraceCtx& b) {
        return a.span < b.span;
      }));
}

// ------------------------------------------------- raw collective blame data

// Staggered arrivals into a bare FenceCollective: the per-rank timestamps,
// raw last-arriver, and merged releaser context must all name the straggler.
TEST(ScopeCollective, PerRankTimestampsNameTheStraggler) {
  sim::Simulator sim;
  sim::Network net(sim, /*num_nodes=*/4);
  std::vector<NodeId> placement;
  for (std::uint32_t n = 0; n < 4; ++n) placement.push_back(NodeId(n));
  sim::FenceCollective coll(sim, net, placement);

  for (std::uint32_t r = 0; r < 4; ++r) {
    const SimTime t = (r + 1) * 1000;
    sim.schedule_at(t, [&coll, r, t] {
      coll.arrive(r, dcr::scope::TraceCtx{/*trace=*/7, /*span=*/100 + r,
                                          /*origin=*/r, /*at=*/t});
    });
  }
  sim.run();

  ASSERT_TRUE(coll.complete());
  EXPECT_EQ(coll.first_arrival(), 1000u);
  EXPECT_EQ(coll.last_arrival(), 4000u);
  EXPECT_EQ(coll.last_arrival_rank(), 3u);
  for (std::uint32_t r = 0; r < 4; ++r) {
    EXPECT_EQ(coll.arrival_time(r), (r + 1) * 1000u) << "rank " << r;
    // The combined result cannot reach any rank before the last contribution.
    EXPECT_GE(coll.completion_time(r), coll.last_arrival()) << "rank " << r;
  }
  EXPECT_GE(coll.completed_at(), coll.last_arrival());
  EXPECT_EQ(coll.latency(), coll.completed_at() - coll.first_arrival());

  // The merged context agrees with the raw timestamps: last arriver == the
  // releaser the tree merge reports, span and all.
  const dcr::scope::TraceCtx rel = coll.releaser();
  EXPECT_TRUE(rel.valid());
  EXPECT_EQ(rel.origin, 3u);
  EXPECT_EQ(rel.span, 103u);
  EXPECT_EQ(rel.at, 4000u);
}

TEST(ScopeCollective, SimultaneousArrivalsBreakTiesByRank) {
  sim::Simulator sim;
  sim::Network net(sim, /*num_nodes=*/3);
  std::vector<NodeId> placement = {NodeId(0), NodeId(1), NodeId(2)};
  sim::FenceCollective coll(sim, net, placement);

  sim.schedule_at(500, [&coll] {
    coll.arrive(0, dcr::scope::TraceCtx{7, 50, 0, 500});
  });
  // Ranks 1 and 2 arrive at the same instant; scheduling order favours 1 but
  // both the raw tracker and the ctx merge must pick the larger rank so the
  // answer is independent of merge/scheduling order.
  sim.schedule_at(2000, [&coll] {
    coll.arrive(1, dcr::scope::TraceCtx{7, 51, 1, 2000});
  });
  sim.schedule_at(2000, [&coll] {
    coll.arrive(2, dcr::scope::TraceCtx{7, 52, 2, 2000});
  });
  sim.run();

  ASSERT_TRUE(coll.complete());
  EXPECT_EQ(coll.last_arrival_rank(), 2u);
  EXPECT_EQ(coll.releaser().origin, 2u);
  EXPECT_EQ(coll.releaser().span, 52u);
}

// --------------------------------------------------------- blame vs dcr-prof

// Acceptance criterion: on a traced stencil, every complete fence names its
// last-releasing shard and span, and the recorder's per-rank waits reconcile
// *exactly* with dcr-prof's always-on FenceWaitNs counters.
TEST(ScopeBlame, StencilReconcilesWithProf) {
  Harness h(8, scope_config(/*scope=*/true));
  StencilConfig scfg{.cells_per_tile = 64, .tiles = 16, .steps = 4};
  scfg.use_trace = true;
  const DcrStats stats = run_stencil(h, scfg);
  ASSERT_TRUE(stats.completed);
  ASSERT_NE(h.rec(), nullptr);
  const dcr::scope::Recorder& rec = *h.rec();

  const dcr::scope::BlameReport r = dcr::scope::build_blame(rec, h.prof());
  EXPECT_TRUE(r.ledger_consistent);
  EXPECT_TRUE(r.waits_reconcile);
  EXPECT_TRUE(r.reconciled());
  EXPECT_EQ(r.fences_issued + r.fences_elided, r.fence_decisions);
  EXPECT_EQ(r.fence_decisions, stats.coarse_deps);

  // Every recorded fence completed (the run quiesced) and every complete
  // fence is attributed to a specific shard + span.
  ASSERT_GT(r.fences.size(), 0u);
  EXPECT_EQ(r.complete_fences, r.fences.size());
  EXPECT_EQ(r.attributed, r.complete_fences);
  for (const dcr::scope::BlameEntry& e : r.fences) {
    ASSERT_TRUE(e.complete);
    EXPECT_NE(e.releaser_shard, dcr::scope::kNoShard);
    EXPECT_NE(e.releaser_span, dcr::scope::kNoSpan);
    // The blamed span really lives on the blamed shard.
    const dcr::scope::SpanRec* sp = rec.span(e.releaser_span);
    ASSERT_NE(sp, nullptr);
    EXPECT_EQ(sp->shard, e.releaser_shard);
    EXPECT_GE(e.last_arrival, e.first_arrival);
  }

  // The exact cross-ledger identity, spelled out: per-shard wait sums equal
  // the FenceWaitNs counters (both derived from the same simulator instants).
  ASSERT_EQ(r.shard_wait_ns.size(), r.prof_shard_wait_ns.size());
  SimTime total = 0;
  for (std::size_t s = 0; s < r.shard_wait_ns.size(); ++s) {
    EXPECT_EQ(r.shard_wait_ns[s], r.prof_shard_wait_ns[s]) << "shard " << s;
    EXPECT_EQ(r.prof_shard_wait_ns[s],
              h.prof().shard(static_cast<std::uint32_t>(s))
                  .get(prof::Counter::FenceWaitNs))
        << "shard " << s;
    total += r.shard_wait_ns[s];
  }
  EXPECT_EQ(r.total_wait_ns, total);

  // Span/launch ledger sanity: spans are well-formed and every launch's
  // causal parent (if any) is a span on the launching shard.
  ASSERT_GT(rec.spans().size(), 0u);
  for (std::size_t i = 0; i < rec.spans().size(); ++i) {
    const dcr::scope::SpanRec& sp = rec.spans()[i];
    EXPECT_EQ(sp.id, i);
    EXPECT_LT(sp.shard, rec.num_shards());
    EXPECT_GE(sp.end, sp.start);
  }
  ASSERT_GT(rec.launches().size(), 0u);
  for (const dcr::scope::LaunchRec& l : rec.launches()) {
    if (l.span == dcr::scope::kNoSpan) continue;
    const dcr::scope::SpanRec* sp = rec.span(l.span);
    ASSERT_NE(sp, nullptr);
    EXPECT_EQ(sp->shard, l.shard);
  }
  // The network tap saw traced traffic.
  std::uint64_t msgs = 0;
  for (const dcr::scope::MessageStats& m : rec.messages()) msgs += m.messages;
  EXPECT_GT(msgs, 0u);
  EXPECT_EQ(rec.makespan(), stats.makespan);
}

// Skew rollup: totals are conserved from the blame matrix, the ranking is
// sorted, and every traced epoch names a critical shard.
TEST(ScopeSkew, RollupConservesBlame) {
  Harness h(8, scope_config(/*scope=*/true));
  StencilConfig scfg{.cells_per_tile = 64, .tiles = 16, .steps = 4};
  scfg.use_trace = true;
  ASSERT_TRUE(run_stencil(h, scfg).completed);
  ASSERT_NE(h.rec(), nullptr);

  const dcr::scope::BlameReport blame =
      dcr::scope::build_blame(*h.rec(), h.prof());
  const dcr::scope::SkewReport skew = dcr::scope::build_skew(*h.rec());
  ASSERT_EQ(skew.num_shards, h.rec()->num_shards());
  ASSERT_EQ(skew.matrix.size(), skew.num_shards);

  SimTime matrix_total = 0;
  for (std::size_t w = 0; w < skew.num_shards; ++w) {
    ASSERT_EQ(skew.matrix[w].size(), skew.num_shards + 1);  // + "<none>" column
    SimTime row = 0;
    for (const SimTime v : skew.matrix[w]) row += v;
    EXPECT_EQ(row, skew.waited_ns[w]) << "waiter " << w;
    EXPECT_EQ(row, blame.shard_wait_ns[w]) << "waiter " << w;
    matrix_total += row;
  }
  EXPECT_EQ(matrix_total, blame.total_wait_ns);

  ASSERT_EQ(skew.ranking.size(), skew.num_shards);
  for (std::size_t i = 1; i < skew.ranking.size(); ++i) {
    EXPECT_GE(skew.blamed_ns[skew.ranking[i - 1]], skew.blamed_ns[skew.ranking[i]]);
  }
  ASSERT_GT(skew.epochs.size(), 0u);
  SimTime epoch_total = 0;
  std::uint64_t epoch_fences = 0;
  for (const auto& e : skew.epochs) {
    if (e.total_ns > 0) {
      EXPECT_NE(e.critical_shard, dcr::scope::kNoShard);
    }
    EXPECT_GE(e.total_ns, e.critical_ns);
    epoch_total += e.total_ns;
    epoch_fences += e.fences;
  }
  EXPECT_EQ(epoch_total, blame.total_wait_ns);
  EXPECT_EQ(epoch_fences, blame.fences.size());
}

// --------------------------------------------------- scope-on/off equivalence

// Tracing is host-side bookkeeping: a scope-on run must be indistinguishable
// from scope-off in virtual time — identical makespan, identical counters.
TEST(ScopeEquivalence, TracingNeverPerturbsExecution) {
  StencilConfig scfg{.cells_per_tile = 64, .tiles = 16, .steps = 4};
  scfg.use_trace = true;

  Harness off(8, scope_config(/*scope=*/false));
  const DcrStats soff = run_stencil(off, scfg);
  Harness on(8, scope_config(/*scope=*/true));
  const DcrStats son = run_stencil(on, scfg);

  ASSERT_TRUE(soff.completed);
  ASSERT_TRUE(son.completed);
  EXPECT_EQ(soff.makespan, son.makespan);
  EXPECT_EQ(snapshot_of(off), snapshot_of(on));
  EXPECT_EQ(off.rec(), nullptr);
  ASSERT_NE(on.rec(), nullptr);
}

// ------------------------------------------------------- Prometheus format

TEST(ScopeMetrics, PrometheusTextFormat) {
  using Type = dcr::scope::MetricsRegistry::Type;
  dcr::scope::MetricsRegistry reg;
  reg.set("scope_test_gauge", "a gauge", Type::Gauge, 3.5);
  reg.set("scope_test_counter", "a counter", Type::Counter, 7,
          /*labels=*/"shard=\"2\"");
  reg.set("scope_test_counter", "a counter", Type::Counter, 9,
          /*labels=*/"shard=\"3\"");
  reg.set("scope_test_volatile_ns", "time-valued", Type::Gauge, 123,
          /*labels=*/"", /*is_volatile=*/true);
  // Pow-2 buckets {2,0,1}: cumulative le="1" -> 2, le="2" -> 2, le="4" -> 3.
  std::vector<std::uint64_t> buckets = {2, 0, 1, 0, 0};
  reg.set_histogram("scope_test_hist", "a histogram", buckets, /*count=*/3,
                    /*sum=*/7);

  const std::string text = reg.prometheus_text();
  EXPECT_NE(text.find("# HELP scope_test_gauge a gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE scope_test_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("scope_test_gauge 3.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE scope_test_counter counter"), std::string::npos);
  EXPECT_NE(text.find("scope_test_counter{shard=\"2\"} 7\n"), std::string::npos);
  EXPECT_NE(text.find("scope_test_counter{shard=\"3\"} 9\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE scope_test_hist histogram"), std::string::npos);
  EXPECT_NE(text.find("scope_test_hist_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("scope_test_hist_bucket{le=\"2\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("scope_test_hist_bucket{le=\"4\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("scope_test_hist_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("scope_test_hist_sum 7\n"), std::string::npos);
  EXPECT_NE(text.find("scope_test_hist_count 3\n"), std::string::npos);

  // Overwriting a labelled sample replaces it rather than appending.
  reg.set("scope_test_counter", "a counter", Type::Counter, 8, "shard=\"2\"");
  const dcr::scope::MetricsRegistry::Metric* m = reg.find("scope_test_counter");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->samples.size(), 2u);
  EXPECT_EQ(m->samples[0].value, 8);

  // zero_volatile: volatile metrics (incl. the histogram, volatile by
  // default) render as zero so cost-model retunes do not churn snapshots.
  const std::string zeroed = reg.prometheus_text(/*zero_volatile=*/true);
  EXPECT_NE(zeroed.find("scope_test_volatile_ns 0\n"), std::string::npos);
  EXPECT_NE(zeroed.find("scope_test_hist_count 0\n"), std::string::npos);
  EXPECT_EQ(zeroed.find("scope_test_hist_bucket{le=\"1\"}"), std::string::npos);
  // Non-volatile values are untouched.
  EXPECT_NE(zeroed.find("scope_test_gauge 3.5\n"), std::string::npos);
}

TEST(ScopeMetrics, CollectMatchesProfCounters) {
  Harness h(8, scope_config(/*scope=*/true));
  StencilConfig scfg{.cells_per_tile = 64, .tiles = 16, .steps = 4};
  scfg.use_trace = true;
  const DcrStats stats = run_stencil(h, scfg);
  ASSERT_TRUE(stats.completed);

  dcr::scope::MetricsRegistry reg;
  dcr::scope::collect_metrics(reg, {.prof = &h.prof(),
                                    .machine = &h.machine,
                                    .recorder = h.rec(),
                                    .now = stats.makespan,
                                    .makespan = stats.makespan});

  const prof::Counters& g = h.prof().global();
  auto value_of = [&reg](const std::string& name) {
    const auto* m = reg.find(name);
    EXPECT_NE(m, nullptr) << name;
    if (m == nullptr || m->samples.empty()) return -1.0;
    return m->samples[0].value;
  };
  EXPECT_EQ(value_of("dcr_fence_decisions_total"),
            static_cast<double>(g.get(prof::GlobalCounter::FenceDecisions)));
  EXPECT_EQ(value_of("dcr_fences_issued_total"),
            static_cast<double>(g.get(prof::GlobalCounter::FencesIssued)));
  EXPECT_EQ(value_of("dcr_fences_elided_total"),
            static_cast<double>(g.get(prof::GlobalCounter::FencesElided)));
  const double rate = value_of("dcr_fence_elision_rate");
  EXPECT_GE(rate, 0.0);
  EXPECT_LE(rate, 1.0);
  EXPECT_EQ(value_of("dcr_makespan_ns"), static_cast<double>(stats.makespan));
  EXPECT_EQ(value_of("dcr_scope_spans_total"),
            static_cast<double>(h.rec()->spans().size()));
  EXPECT_EQ(value_of("dcr_scope_fences_recorded"),
            static_cast<double>(h.rec()->fences().size()));
  EXPECT_EQ(value_of("dcr_scope_task_launches_total"),
            static_cast<double>(h.rec()->launches().size()));

  // Per-shard series carry one sample per shard.
  const auto* depth = reg.find("dcr_shard_queue_depth_ns");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->samples.size(), h.prof().num_shards());

  // The merged fence-wait histogram totals the per-shard counters.
  const auto* hist = reg.find("dcr_fence_wait_ns");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->hist_samples.size(), 1u);
  std::uint64_t want_count = 0;
  for (std::uint32_t s = 0; s < h.prof().num_shards(); ++s) {
    want_count += h.prof().shard(s).hist(prof::Hist::FenceWaitNs).count();
  }
  EXPECT_EQ(hist->hist_samples[0].count, want_count);
  EXPECT_GT(want_count, 0u);

  // The whole page parses as well-formed Prometheus text (spot-check: every
  // non-comment line is "name[{labels}] value").
  std::istringstream is(reg.prometheus_text());
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.rfind(' ');
    ASSERT_NE(sp, std::string::npos) << line;
    EXPECT_NO_THROW(std::stod(line.substr(sp + 1))) << line;
  }
}

// The exposer ticks at its virtual-time cadence while the run is live and
// stops once the runtime reports finished (else it would keep the simulator
// calendar alive forever).
TEST(ScopeMetrics, ExposerTicksUntilRuntimeFinishes) {
  sim::Machine machine(cluster(8));
  FunctionRegistry functions;
  DcrRuntime rt(machine, functions, scope_config(/*scope=*/true));
  const auto fns = register_stencil_functions(functions, 1.0);
  StencilConfig scfg{.cells_per_tile = 64, .tiles = 16, .steps = 4};
  scfg.use_trace = true;

  std::uint64_t sink_calls = 0;
  dcr::scope::MetricsExposer::Options opts;
  opts.interval = us(20);
  opts.sink = [&sink_calls](const std::string& text) {
    sink_calls++;
    EXPECT_NE(text.find("dcr_fence_decisions_total"), std::string::npos);
  };
  opts.done = [&rt] { return rt.finished(); };
  dcr::scope::MetricsExposer exposer(
      machine.sim(), opts, [&rt, &machine](dcr::scope::MetricsRegistry& reg) {
        dcr::scope::collect_metrics(reg, {.prof = &rt.profiler(),
                                          .machine = &machine,
                                          .recorder = rt.scope(),
                                          .now = machine.sim().now(),
                                          .makespan = 0});
      });
  exposer.start();
  const DcrStats stats = rt.execute(make_stencil_app(scfg, fns));
  ASSERT_TRUE(stats.completed);
  EXPECT_GT(exposer.ticks(), 0u);
  EXPECT_EQ(exposer.ticks(), sink_calls);
  EXPECT_NE(exposer.last_text().find("dcr_fence_decisions_total"),
            std::string::npos);
}

// ------------------------------------------------------------ HTTP endpoint

// One GET against the loopback endpoint; returns the full raw response.
std::string http_get(std::uint16_t port, const std::string& path = "/") {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::write(fd, req.data() + off, req.size() - off);
    if (n <= 0) break;
    off += static_cast<std::size_t>(n);
  }
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    resp.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return resp;
}

TEST(ScopeHttp, ServesLatestSnapshot) {
  dcr::scope::MetricsHttpServer srv(/*port=*/0);  // 0: OS assigns a free port
  ASSERT_TRUE(srv.ok()) << srv.error();
  ASSERT_NE(srv.port(), 0);

  srv.set_body("dcr_up 1\n");
  const std::string first = http_get(srv.port());
  EXPECT_NE(first.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(first.find("text/plain"), std::string::npos);
  EXPECT_NE(first.find("\r\n\r\ndcr_up 1\n"), std::string::npos);

  // set_body swaps the snapshot for subsequent requests.
  srv.set_body("dcr_up 2\n");
  const std::string second = http_get(srv.port());
  EXPECT_NE(second.find("\r\n\r\ndcr_up 2\n"), std::string::npos);
  EXPECT_EQ(second.find("dcr_up 1"), std::string::npos);
  srv.stop();
}

// -------------------------------------------------------- baseline watchdog

TEST(ScopeBaseline, MachineDependentFieldClassifier) {
  EXPECT_TRUE(dcr::scope::machine_dependent_field("wall_off_ms_min"));
  EXPECT_TRUE(dcr::scope::machine_dependent_field("overhead_pct"));
  EXPECT_FALSE(dcr::scope::machine_dependent_field("fences_issued"));
  EXPECT_FALSE(dcr::scope::machine_dependent_field("makespan_identical"));
}

TEST(ScopeBaseline, FlagsThresholdBreaches) {
  const prof::JsonValue base =
      parsed(R"([{"sweep": "a", "x": 100, "wall_ms": 10}])");
  const prof::JsonValue live =
      parsed(R"([{"sweep": "a", "x": 110, "wall_ms": 20}])");

  // +10% on x breaches a 5% threshold; the wall field is skipped by default
  // even though it doubled.
  dcr::scope::BaselineDiff d = dcr::scope::check_baseline(base, live, 5.0);
  EXPECT_FALSE(d.ok());
  ASSERT_EQ(d.breaches.size(), 1u);
  EXPECT_EQ(d.breaches[0].sweep, "a");
  EXPECT_EQ(d.breaches[0].key, "x");
  EXPECT_DOUBLE_EQ(d.breaches[0].base, 100);
  EXPECT_DOUBLE_EQ(d.breaches[0].live, 110);
  EXPECT_NEAR(d.breaches[0].delta_pct, 10.0, 1e-9);
  EXPECT_EQ(d.matched_sweeps, 1u);
  ASSERT_EQ(d.skipped.size(), 1u);
  EXPECT_EQ(d.skipped[0], "a.wall_ms");

  // A generous threshold passes; --include-wall turns the wall jump into a
  // breach of its own.
  EXPECT_TRUE(dcr::scope::check_baseline(base, live, 15.0).ok());
  const dcr::scope::BaselineDiff w =
      dcr::scope::check_baseline(base, live, 15.0, /*include_wall=*/true);
  EXPECT_FALSE(w.ok());
  ASSERT_EQ(w.breaches.size(), 1u);
  EXPECT_EQ(w.breaches[0].key, "wall_ms");
}

TEST(ScopeBaseline, ReportsSchemaDriftAsAddedRemoved) {
  const prof::JsonValue base = parsed(
      R"([{"sweep": "a", "x": 1, "gone": 2}, {"sweep": "old", "y": 3}])");
  const prof::JsonValue live = parsed(
      R"([{"sweep": "a", "x": 1, "fresh": 4}, {"sweep": "new", "z": 5}])");

  const dcr::scope::BaselineDiff d = dcr::scope::check_baseline(base, live, 5.0);
  // Drift is reported, not fatal: the shared fields still match.
  EXPECT_TRUE(d.ok());
  EXPECT_EQ(d.matched_sweeps, 1u);
  const std::set<std::string> added(d.added.begin(), d.added.end());
  const std::set<std::string> removed(d.removed.begin(), d.removed.end());
  EXPECT_TRUE(added.count("a.fresh"));
  EXPECT_TRUE(added.count("new.*"));
  EXPECT_TRUE(removed.count("a.gone"));
  EXPECT_TRUE(removed.count("old.*"));
}

TEST(ScopeBaseline, RejectsDisjointAndMalformedInputs) {
  // No sweep in common: nothing was actually compared, so the check fails
  // rather than green-lighting an empty comparison.
  const dcr::scope::BaselineDiff disjoint = dcr::scope::check_baseline(
      parsed(R"([{"sweep": "a", "x": 1}])"),
      parsed(R"([{"sweep": "b", "x": 1}])"), 5.0);
  EXPECT_EQ(disjoint.matched_sweeps, 0u);
  EXPECT_FALSE(disjoint.ok());

  const dcr::scope::BaselineDiff missing = dcr::scope::check_baseline_files(
      "/nonexistent/BENCH_base.json", "/nonexistent/BENCH_live.json", 5.0);
  EXPECT_FALSE(missing.error.empty());
  EXPECT_FALSE(missing.ok());
}

// ------------------------------------------------------- prof snapshot diff

TEST(ProfDiff, TolerantOfMissingKeysAndSections) {
  const prof::JsonValue a =
      parsed(R"({"global": {"x": 1, "y": 2}, "merged": {"q": 1}})");
  const prof::JsonValue b =
      parsed(R"({"global": {"x": 1, "y": 3, "z": 4}})");

  const prof::SnapshotDiff d = prof::diff_snapshots(a, b);
  EXPECT_TRUE(d.any());
  ASSERT_EQ(d.changed.size(), 1u);
  EXPECT_EQ(d.changed[0].key, "global.y");
  EXPECT_DOUBLE_EQ(d.changed[0].a, 2);
  EXPECT_DOUBLE_EQ(d.changed[0].b, 3);
  ASSERT_EQ(d.added.size(), 1u);
  EXPECT_EQ(d.added[0], "global.z");
  // The whole merged section vanished from b: its keys are removals, not a
  // crash (the old CLI silently skipped one-sided keys).
  ASSERT_EQ(d.removed.size(), 1u);
  EXPECT_EQ(d.removed[0], "merged.q");

  EXPECT_FALSE(prof::diff_snapshots(a, a).any());
}

// --------------------------------------------------- scope-on/off fuzz sweep

// 100 label-seeded loop programs (templates on) run under fault injection
// with tracing on and off.  Tracing is host-side only, so the on/off pair
// must be indistinguishable in virtual time: identical makespan, identical
// counter snapshot, same realized partial order — both matching the
// fault-free reference graph (spy-verified).  The scope-on run's blame
// ledger must still reconcile exactly across the crash + recovery.
class ScopeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScopeFuzz, TracingNeverPerturbsExecution) {
  const std::uint64_t seed = GetParam();
  Philox4x32 rng(fuzz::seed_for_label("scope", seed), /*stream=*/13);
  const fuzz::LoopDcrProgram program = fuzz::generate_loop(rng, /*tiles=*/6);
  const std::size_t nodes = 3;

  // Fault-free reference: spy-verified trace, graph + makespan.
  SimTime fault_free_makespan = 0;
  rt::TaskGraph reference;
  {
    Harness h(nodes, scope_config(/*scope=*/true, /*trace=*/true, /*graph=*/true));
    const FunctionId fn = h.functions.register_simple("t", us(1), 1.0);
    const DcrStats stats =
        h.runtime.execute(fuzz::materialize_loop(program, fn, /*use_trace=*/true));
    ASSERT_TRUE(stats.completed) << "seed " << seed << ": " << stats.abort_message;
    const spy::Trace* trace = h.runtime.trace();
    ASSERT_NE(trace, nullptr);
    const spy::VerifyReport report = spy::verify(*trace);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.summary();
    ASSERT_NE(h.rec(), nullptr);
    EXPECT_TRUE(dcr::scope::build_blame(*h.rec(), h.prof()).reconciled())
        << "seed " << seed;
    fault_free_makespan = stats.makespan;
    reference = h.runtime.realized_graph().transitive_closure();
  }
  ASSERT_TRUE(reference.is_acyclic());

  // Same program under the same fault plan (drops + one mid-run crash),
  // once with tracing off and once with it on.
  auto faulted = [&](bool scope, DcrStats* stats_out, std::string* snap_out) {
    sim::FaultConfig fcfg;
    fcfg.seed = fuzz::seed_for_label("scope-plan", seed);
    fcfg.drop_rate = 0.005;
    const NodeId victim(static_cast<std::uint32_t>(1 + seed % (nodes - 1)));
    fcfg.crashes.push_back({victim, fault_free_makespan * (1 + seed % 3) / 4});

    sim::Machine machine(cluster(nodes));
    sim::FaultPlan plan(fcfg);
    machine.install_faults(plan);
    FunctionRegistry functions;
    DcrRuntime rt(machine, functions,
                  scope_config(scope, /*trace=*/false, /*graph=*/true));
    const FunctionId fn = functions.register_simple("t", us(1), 1.0);
    *stats_out = rt.execute(fuzz::materialize_loop(program, fn, /*use_trace=*/true));
    ASSERT_TRUE(stats_out->completed)
        << "seed " << seed << " scope=" << scope << ": "
        << stats_out->abort_message;
    {
      std::ostringstream os;
      rt.profiler().write_snapshot_json(os, /*zero_volatile=*/false);
      *snap_out = os.str();
    }
    EXPECT_TRUE(
        reference.same_partial_order(rt.realized_graph().transitive_closure()))
        << "seed " << seed << " scope=" << scope;
    const prof::Counters& g = rt.profiler().global();
    EXPECT_EQ(g.get(prof::GlobalCounter::FencesIssued) +
                  g.get(prof::GlobalCounter::FencesElided),
              g.get(prof::GlobalCounter::FenceDecisions))
        << "seed " << seed;
    EXPECT_EQ(g.get(prof::GlobalCounter::Recoveries), 1u) << "seed " << seed;
    EXPECT_GE(g.get(prof::GlobalCounter::RecoveryEpochs), 1u) << "seed " << seed;
    // The causal ledger keeps reconciling across the crash + recovery: the
    // recorder's per-rank waits and the FenceWaitNs counters are computed
    // from the same instants even when a fence round spans the failure.
    if (scope) {
      ASSERT_NE(rt.scope(), nullptr);
      const dcr::scope::BlameReport blame =
          dcr::scope::build_blame(*rt.scope(), rt.profiler());
      EXPECT_TRUE(blame.reconciled()) << "seed " << seed;
      EXPECT_EQ(blame.attributed, blame.complete_fences) << "seed " << seed;
    }
  };

  DcrStats stats_off, stats_on;
  std::string snap_off, snap_on;
  faulted(/*scope=*/false, &stats_off, &snap_off);
  faulted(/*scope=*/true, &stats_on, &snap_on);
  EXPECT_EQ(stats_off.makespan, stats_on.makespan) << "seed " << seed;
  // Counters are a pure function of the (deterministic) execution; the
  // scope knob only gates the host-side causal ledger.
  EXPECT_EQ(snap_off, snap_on) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScopeFuzz, ::testing::Range<std::uint64_t>(0, 100));

// ===========================================================================
// Real-threads backend: wall-clock blame/skew, flight recorder, live metrics
// ===========================================================================

exec::ThreadConfig threads_scope_config(std::size_t shards) {
  exec::ThreadConfig cfg;
  cfg.num_shards = shards;
  cfg.profile = true;
  cfg.scope = true;
  return cfg;
}

// The tentpole acceptance criterion on real threads: every time in the blame
// report is wall-clock nanoseconds, and the recorder's per-rank waits still
// reconcile *exactly* with dcr-prof's FenceWaitNs counters — the same
// Clock::now() reads feed both ledgers, so the identity is by construction,
// not within-epsilon.
TEST(ScopeThreads, BlameReconcilesOnWallClock) {
  FunctionRegistry functions;
  const auto fns = register_stencil_functions(functions, 1.0);
  StencilConfig scfg{.cells_per_tile = 64, .tiles = 16, .steps = 4};
  scfg.use_trace = true;
  exec::ThreadRuntime rt(functions, threads_scope_config(8));
  const DcrStats stats = rt.execute(make_stencil_app(scfg, fns));
  ASSERT_TRUE(stats.completed) << stats.abort_message;
  ASSERT_NE(rt.scope(), nullptr);
  const dcr::scope::Recorder& rec = *rt.scope();

  const dcr::scope::BlameReport r = dcr::scope::build_blame(rec, rt.profiler());
  EXPECT_TRUE(r.ledger_consistent);
  EXPECT_TRUE(r.waits_reconcile);
  EXPECT_TRUE(r.reconciled());
  EXPECT_EQ(r.fences_issued + r.fences_elided, r.fence_decisions);

  ASSERT_GT(r.fences.size(), 0u);
  EXPECT_EQ(r.complete_fences, r.fences.size());
  EXPECT_EQ(r.attributed, r.complete_fences);
  for (const dcr::scope::BlameEntry& e : r.fences) {
    ASSERT_TRUE(e.complete);
    EXPECT_NE(e.releaser_shard, dcr::scope::kNoShard);
    EXPECT_NE(e.releaser_span, dcr::scope::kNoSpan);
    const dcr::scope::SpanRec* sp = rec.span(e.releaser_span);
    ASSERT_NE(sp, nullptr);
    EXPECT_EQ(sp->shard, e.releaser_shard);
    EXPECT_GE(e.last_arrival, e.first_arrival);
  }

  // The exact cross-ledger identity on the wall clock.
  ASSERT_EQ(r.shard_wait_ns.size(), r.prof_shard_wait_ns.size());
  SimTime total = 0;
  for (std::size_t s = 0; s < r.shard_wait_ns.size(); ++s) {
    EXPECT_EQ(r.shard_wait_ns[s], r.prof_shard_wait_ns[s]) << "shard " << s;
    EXPECT_EQ(r.prof_shard_wait_ns[s],
              rt.profiler().shard(static_cast<std::uint32_t>(s))
                  .get(prof::Counter::FenceWaitNs))
        << "shard " << s;
    total += r.shard_wait_ns[s];
  }
  EXPECT_EQ(r.total_wait_ns, total);

  // Per-shard single-writer ledgers merged into the dense global span order:
  // ids stay dense and every span/launch names its owning shard.
  ASSERT_GT(rec.spans().size(), 0u);
  for (std::size_t i = 0; i < rec.spans().size(); ++i) {
    const dcr::scope::SpanRec& sp = rec.spans()[i];
    EXPECT_EQ(sp.id, i);
    EXPECT_LT(sp.shard, rec.num_shards());
    EXPECT_GE(sp.end, sp.start);
  }
  ASSERT_GT(rec.launches().size(), 0u);
  for (const dcr::scope::LaunchRec& l : rec.launches()) {
    if (l.span == dcr::scope::kNoSpan) continue;
    const dcr::scope::SpanRec* sp = rec.span(l.span);
    ASSERT_NE(sp, nullptr);
    EXPECT_EQ(sp->shard, l.shard);
  }
  EXPECT_EQ(rec.messages().size(), rec.num_shards());
  EXPECT_EQ(rec.makespan(), stats.makespan);
}

// Skew rollup conservation holds unchanged on wall-clock inputs.
TEST(ScopeThreads, SkewRollupConservesWallClockBlame) {
  FunctionRegistry functions;
  const auto fns = register_stencil_functions(functions, 1.0);
  StencilConfig scfg{.cells_per_tile = 64, .tiles = 16, .steps = 4};
  scfg.use_trace = true;
  exec::ThreadRuntime rt(functions, threads_scope_config(8));
  ASSERT_TRUE(rt.execute(make_stencil_app(scfg, fns)).completed);
  ASSERT_NE(rt.scope(), nullptr);

  const dcr::scope::BlameReport blame =
      dcr::scope::build_blame(*rt.scope(), rt.profiler());
  const dcr::scope::SkewReport skew = dcr::scope::build_skew(*rt.scope());
  ASSERT_EQ(skew.num_shards, rt.scope()->num_shards());
  ASSERT_EQ(skew.matrix.size(), skew.num_shards);
  SimTime matrix_total = 0;
  for (std::size_t w = 0; w < skew.num_shards; ++w) {
    SimTime row = 0;
    for (const SimTime v : skew.matrix[w]) row += v;
    EXPECT_EQ(row, skew.waited_ns[w]) << "waiter " << w;
    EXPECT_EQ(row, blame.shard_wait_ns[w]) << "waiter " << w;
    matrix_total += row;
  }
  EXPECT_EQ(matrix_total, blame.total_wait_ns);
  ASSERT_EQ(skew.ranking.size(), skew.num_shards);
  for (std::size_t i = 1; i < skew.ranking.size(); ++i) {
    EXPECT_GE(skew.blamed_ns[skew.ranking[i - 1]],
              skew.blamed_ns[skew.ranking[i]]);
  }
}

// ------------------------------------------------------- flight recorder

// The ring keeps only the most recent `capacity` events per shard, and the
// dump is Chrome trace_event JSON our own parser can load (Perfetto's format
// tolerates the extra top-level metadata key).
TEST(ScopeFlight, RingIsBoundedAndDumpParses) {
  dcr::scope::FlightRecorder fr(/*num_shards=*/2, /*capacity=*/8);
  using Kind = dcr::scope::FlightEvent::Kind;
  for (std::uint64_t i = 0; i < 20; ++i) {
    fr.record(0, {Kind::Span, /*shard=*/0, /*op=*/i, /*aux=*/i,
                  /*start=*/i * 10, /*end=*/i * 10 + 5});
  }
  fr.record(1, {Kind::FenceWait, 1, 7, 0, 3, 9});
  EXPECT_EQ(fr.recorded(0), 20u);
  EXPECT_EQ(fr.recorded(1), 1u);

  const std::string path = ::testing::TempDir() + "dcr_flight_unit.json";
  std::remove(path.c_str());
  ASSERT_TRUE(fr.dump(path, "unit \"quoted\" reason", /*prof=*/nullptr));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream ss;
  ss << in.rdbuf();
  const prof::JsonValue v = parsed(ss.str());
  const prof::JsonValue* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // Shard 0 retains the last 8 of 20, shard 1 has its single event.
  EXPECT_EQ(events->array.size(), 9u);
  for (const prof::JsonValue& e : events->array) {
    const prof::JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->string, "X");  // complete events: ts + dur
    EXPECT_NE(e.find("ts"), nullptr);
    EXPECT_NE(e.find("dur"), nullptr);
    EXPECT_NE(e.find("tid"), nullptr);
  }
  const prof::JsonValue* meta = v.find("metadata");
  ASSERT_NE(meta, nullptr);
  const prof::JsonValue* reason = meta->find("reason");
  ASSERT_NE(reason, nullptr);
  // Quotes are sanitized out (the dump path never escapes, it replaces).
  EXPECT_EQ(reason->string.find('"'), std::string::npos);
  EXPECT_NE(reason->string.find("quoted"), std::string::npos);
  const prof::JsonValue* recorded = meta->find("flight_recorded");
  ASSERT_NE(recorded, nullptr);
  ASSERT_EQ(recorded->array.size(), 2u);
  EXPECT_EQ(recorded->array[0].number, 20.0);
  EXPECT_EQ(recorded->array[1].number, 1.0);
  std::remove(path.c_str());
}

// Forcing a §3 control-determinism violation on the threads backend must
// leave a loadable post-mortem dump behind: recent spans/launches per shard
// plus the abort reason and the per-shard blame summary.
TEST(ScopeThreads, FlightRecorderDumpsOnDeterminismAbort) {
  const std::string path = ::testing::TempDir() + "dcr_flight_abort.json";
  std::remove(path.c_str());
  FunctionRegistry functions;
  const FunctionId fn = functions.register_simple("t", us(1), 1.0);
  exec::ThreadConfig cfg = threads_scope_config(4);
  cfg.flight_path = path;
  exec::ThreadRuntime rt(functions, cfg);
  const DcrStats stats = rt.execute([fn](Context& ctx) {
    const FieldSpaceId fs = ctx.create_field_space();
    const FieldId f = ctx.allocate_field(fs, 8, "x");
    const RegionTreeId tree = ctx.create_region(rt::Rect::r1(0, 63), fs);
    const IndexSpaceId root = ctx.root(tree);
    const PartitionId part = ctx.partition_equal(root, 4);
    ctx.fill(root, {f});
    IndexLaunch l;
    l.fn = fn;
    l.domain = rt::Rect::r1(0, 3);
    l.requirements.push_back(
        rt::GroupRequirement::on_partition(part, {f}, rt::Privilege::ReadWrite));
    ctx.index_launch(l);
    // Shard-dependent argument: the §3 violation the folded digests flag.
    ctx.allocate_field(fs, 8 + ctx.shard_id().value, "diverge");
  });
  EXPECT_TRUE(stats.determinism_violation);
  EXPECT_FALSE(stats.completed);
  ASSERT_NE(rt.flight(), nullptr);

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "no flight dump at " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const prof::JsonValue v = parsed(ss.str());
  const prof::JsonValue* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_GT(events->array.size(), 0u) << "abort dump recorded no events";
  const prof::JsonValue* meta = v.find("metadata");
  ASSERT_NE(meta, nullptr);
  const prof::JsonValue* reason = meta->find("reason");
  ASSERT_NE(reason, nullptr);
  EXPECT_NE(reason->string.find("determinism"), std::string::npos)
      << reason->string;
  const prof::JsonValue* recorded = meta->find("flight_recorded");
  ASSERT_NE(recorded, nullptr);
  EXPECT_EQ(recorded->array.size(), 4u);
  const prof::JsonValue* waits = meta->find("shard_fence_wait_ns");
  ASSERT_NE(waits, nullptr);
  EXPECT_EQ(waits->array.size(), 4u);
  std::remove(path.c_str());
}

// ---------------------------------------------------- wall-clock refresher

// The wall-clock sibling of the exposer: ticks on its own OS thread at a
// real-time cadence and performs one final collection at stop() so the last
// snapshot covers the whole run.
TEST(ScopeMetrics, WallRefresherTicksAndFinalSnapshot) {
  std::atomic<std::uint64_t> collected{0};
  dcr::scope::WallMetricsRefresher::Options opts;
  opts.interval_ns = ms(2);
  std::atomic<std::uint64_t> sink_calls{0};
  opts.sink = [&sink_calls](const std::string& text) {
    EXPECT_NE(text.find("scope_refresher_collections"), std::string::npos);
    sink_calls.fetch_add(1);
  };
  dcr::scope::WallMetricsRefresher refresher(
      opts, [&collected](dcr::scope::MetricsRegistry& reg) {
        using Type = dcr::scope::MetricsRegistry::Type;
        reg.set("scope_refresher_collections", "collect() invocations",
                Type::Counter, static_cast<double>(collected.fetch_add(1) + 1));
      });
  refresher.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  refresher.stop();
  const std::uint64_t after_stop = refresher.ticks();
  EXPECT_GT(after_stop, 0u);
  EXPECT_EQ(after_stop, sink_calls.load());
  EXPECT_EQ(after_stop, collected.load());
  EXPECT_NE(refresher.last_text().find("scope_refresher_collections"),
            std::string::npos);
  // Idempotent: a second stop neither ticks nor deadlocks.
  refresher.stop();
  EXPECT_EQ(refresher.ticks(), after_stop);
}

// Live collection during a real thread-fleet run: the refresher reads only
// the always-on prof counter banks and the recorder's atomic tallies, so it
// is safe (and Tsan-clean) concurrently with the executing shards.
TEST(ScopeThreads, LiveMetricsDuringThreadFleetRun) {
  FunctionRegistry functions;
  const auto fns = register_stencil_functions(functions, 1.0);
  StencilConfig scfg{.cells_per_tile = 64, .tiles = 16, .steps = 6};
  scfg.use_trace = true;
  exec::ThreadRuntime rt(functions, threads_scope_config(8));

  dcr::scope::WallMetricsRefresher::Options opts;
  opts.interval_ns = us(200);
  dcr::scope::WallMetricsRefresher refresher(
      opts, [&rt](dcr::scope::MetricsRegistry& reg) {
        dcr::scope::collect_metrics(reg, {.prof = &rt.profiler(),
                                          .machine = nullptr,
                                          .recorder = rt.scope(),
                                          .now = 0,
                                          .makespan = 0});
      });
  refresher.start();
  const DcrStats stats = rt.execute(make_stencil_app(scfg, fns));
  refresher.stop();
  ASSERT_TRUE(stats.completed) << stats.abort_message;
  EXPECT_GT(refresher.ticks(), 0u);
  // The final (post-join) snapshot agrees with the quiesced merged ledgers.
  const std::string text = refresher.last_text();
  EXPECT_NE(text.find("dcr_fence_decisions_total"), std::string::npos);
  EXPECT_NE(text.find("dcr_scope_spans_total"), std::string::npos);
  std::ostringstream want;
  want << "dcr_scope_spans_total " << rt.scope()->spans().size();
  EXPECT_NE(text.find(want.str()), std::string::npos)
      << "final snapshot disagrees with the merged ledger:\n"
      << text;
}

// -------------------------------------------------- HTTP endpoint, threads

// Unknown paths 404 with an exact Content-Length so well-behaved clients
// terminate cleanly (ISSUE satellite: the 404 path previously dropped the
// header).
TEST(ScopeHttp, NotFoundCarriesContentLength) {
  dcr::scope::MetricsHttpServer srv(/*port=*/0);
  ASSERT_TRUE(srv.ok()) << srv.error();
  srv.set_body("dcr_up 1\n");
  const std::string resp = http_get(srv.port(), "/nope");
  EXPECT_NE(resp.find("HTTP/1.1 404 Not Found"), std::string::npos) << resp;
  EXPECT_NE(resp.find("Content-Length: 10"), std::string::npos) << resp;
  EXPECT_NE(resp.find("\r\n\r\nnot found\n"), std::string::npos) << resp;
  // /metrics serves the snapshot, query strings are ignored.
  const std::string metrics = http_get(srv.port(), "/metrics?x=1");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos) << metrics;
  EXPECT_NE(metrics.find("\r\n\r\ndcr_up 1\n"), std::string::npos) << metrics;
  srv.stop();
}

// Tsan regression (ISSUE satellite): concurrent GETs racing set_body must be
// data-race-free, and every response must be a complete snapshot (never a
// torn mix of old and new bodies).
TEST(ScopeHttp, ConcurrentRequestsRaceSetBody) {
  dcr::scope::MetricsHttpServer srv(/*port=*/0);
  ASSERT_TRUE(srv.ok()) << srv.error();
  srv.set_body("snapshot 0 end\n");

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&srv, &bad, c] {
      for (int i = 0; i < 25; ++i) {
        const std::string resp =
            http_get(srv.port(), (c % 2) ? "/metrics" : "/");
        if (resp.find("HTTP/1.1 200 OK") == std::string::npos) bad.fetch_add(1);
        const std::size_t body = resp.find("\r\n\r\n");
        if (body == std::string::npos ||
            resp.compare(body + 4, 9, "snapshot ") != 0 ||
            resp.find(" end\n", body) == std::string::npos) {
          bad.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&srv, &done] {
    for (std::uint64_t i = 1; !done.load(); ++i) {
      srv.set_body("snapshot " + std::to_string(i) + " end\n");
      std::this_thread::yield();
    }
  });
  for (auto& t : clients) t.join();
  done.store(true);
  writer.join();
  EXPECT_EQ(bad.load(), 0u);
  srv.stop();
}

// ------------------------------------------- scope+exec combined fuzz sweep

// ISSUE satellite: 25 fuzzed loop programs through the threads backend with
// tracing off and on.  Both runs must realize the simulator reference's
// task graph (spy-verified), and the scope-on run's wall-clock ledgers must
// hold every invariant the simulator ledgers do.  Rides the scope+exec fuzz
// labels and the Tsan tree in check-hardened.
class ScopeThreadsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScopeThreadsFuzz, WallClockLedgersHoldOnThreads) {
  const std::uint64_t seed = GetParam();
  Philox4x32 rng(fuzz::seed_for_label("scope-threads", seed), /*stream=*/17);
  const fuzz::LoopDcrProgram program = fuzz::generate_loop(rng, /*tiles=*/6);
  const std::size_t shards = 3;

  // Simulator reference: spy-verified trace and realized graph.
  spy::Trace reference;
  {
    sim::Machine machine(cluster(shards));
    FunctionRegistry functions;
    DcrConfig cfg;
    cfg.record_trace = true;
    DcrRuntime rt(machine, functions, cfg);
    const FunctionId fn = functions.register_simple("t", us(1), 1.0);
    const DcrStats stats =
        rt.execute(fuzz::materialize_loop(program, fn, /*use_trace=*/true));
    ASSERT_TRUE(stats.completed) << "seed " << seed << ": " << stats.abort_message;
    const spy::VerifyReport vr = spy::verify(*rt.trace());
    ASSERT_TRUE(vr.ok()) << "seed " << seed << ": " << vr.summary();
    reference = *rt.trace();
  }

  auto run_threads = [&](bool scope) {
    exec::ThreadConfig cfg;
    cfg.num_shards = shards;
    cfg.record_trace = true;
    cfg.profile = true;
    cfg.scope = scope;
    FunctionRegistry functions;
    exec::ThreadRuntime rt(functions, cfg);
    const FunctionId fn = functions.register_simple("t", us(1), 1.0);
    const DcrStats stats =
        rt.execute(fuzz::materialize_loop(program, fn, /*use_trace=*/true));
    ASSERT_TRUE(stats.completed)
        << "seed " << seed << " scope=" << scope << ": " << stats.abort_message;
    EXPECT_FALSE(stats.determinism_violation)
        << "seed " << seed << ": " << stats.violation_message;
    std::string why;
    EXPECT_TRUE(spy::graph_equivalent(reference, *rt.trace(), &why))
        << "seed " << seed << " scope=" << scope << ": " << why;

    const prof::Counters& g = rt.profiler().global();
    EXPECT_EQ(g.get(prof::GlobalCounter::FencesIssued) +
                  g.get(prof::GlobalCounter::FencesElided),
              g.get(prof::GlobalCounter::FenceDecisions))
        << "seed " << seed;
    if (!scope) {
      EXPECT_EQ(rt.scope(), nullptr);
      return;
    }
    // Wall-clock ledger invariants, exactly as on the simulator.
    ASSERT_NE(rt.scope(), nullptr);
    const dcr::scope::Recorder& rec = *rt.scope();
    const dcr::scope::BlameReport blame =
        dcr::scope::build_blame(rec, rt.profiler());
    EXPECT_TRUE(blame.reconciled()) << "seed " << seed;
    EXPECT_EQ(blame.attributed, blame.complete_fences) << "seed " << seed;
    for (std::size_t i = 0; i < rec.spans().size(); ++i) {
      ASSERT_EQ(rec.spans()[i].id, i) << "seed " << seed;
    }
    for (const dcr::scope::LaunchRec& l : rec.launches()) {
      if (l.span == dcr::scope::kNoSpan) continue;
      const dcr::scope::SpanRec* sp = rec.span(l.span);
      ASSERT_NE(sp, nullptr) << "seed " << seed;
      EXPECT_EQ(sp->shard, l.shard) << "seed " << seed;
    }
  };
  run_threads(/*scope=*/false);
  run_threads(/*scope=*/true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScopeThreadsFuzz,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace dcr::core
