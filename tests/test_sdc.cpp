// SDC-resilient selective task replication (src/dcr/replicate, sim/fault SDC
// injector, common/crc32c).
//
// Units: CRC32C vectors and bit-exact double digests, control-taint
// registration/propagation, the seeded value-corruption injector
// (determinism, rate gating, class weights, sign/finiteness preservation),
// and the executor's configuration DCR_CHECKs.
//
// End-to-end on the stencil-with-residual (the control-feeding future chain):
// selective replication scope, detection + healing ledgers, stale-quorum
// audit, replica placement across a crashed shard, retry-budget exhaustion
// into graceful abort, corruption-sourced failover, and spy-verified
// task-graph equivalence between replicated and unreplicated runs.  Plus a
// 100-seed SDC on/off fuzz sweep (labelled fuzz; the rest runs in
// check-fast).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "apps/stencil.hpp"
#include "common/crc32c.hpp"
#include "dcr/replicate.hpp"
#include "dcr/runtime.hpp"
#include "dcr_fuzz_programs.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "spy/verify.hpp"

namespace dcr::core {
namespace {

using apps::StencilConfig;
using apps::make_stencil_app;
using apps::register_stencil_functions;

sim::MachineConfig cluster(std::size_t nodes) {
  return {.num_nodes = nodes,
          .compute_procs_per_node = 1,
          .network = {.alpha = us(1), .ns_per_byte = 0.1, .local_latency = ns(50)}};
}

constexpr std::size_t kNodes = 8;
constexpr std::size_t kTiles = 16;
constexpr std::size_t kSteps = 5;

StencilConfig residual_stencil() {
  return {.cells_per_tile = 128,
          .tiles = kTiles,
          .steps = kSteps,
          .use_trace = true,
          .residual_every = 1};
}

struct RunOut {
  DcrStats stats;
  spy::Trace trace;
  std::uint64_t in_flight = ~0ull;
  std::uint64_t prof_replicas_issued = 0;
};

RunOut run_residual(std::size_t nodes, DcrConfig cfg, double sdc_rate,
                    std::uint64_t seed, bool record_trace = false,
                    sim::FaultConfig extra = {}) {
  sim::Machine machine(cluster(nodes));
  extra.seed = seed;
  extra.sdc.rate = sdc_rate;
  sim::FaultPlan plan(extra);
  const bool with_plan = sdc_rate > 0.0 || !extra.crashes.empty();
  if (with_plan) machine.install_faults(plan);
  FunctionRegistry functions;
  const auto fns = register_stencil_functions(functions, 1.0);
  cfg.record_trace = cfg.record_trace || record_trace;
  DcrRuntime rt(machine, functions, cfg);
  RunOut out;
  out.stats = rt.execute(make_stencil_app(residual_stencil(), fns));
  if (rt.trace() != nullptr) out.trace = *rt.trace();
  if (rt.replicator() != nullptr) out.in_flight = rt.replicator()->in_flight();
  out.prof_replicas_issued =
      rt.profiler().global().get(prof::GlobalCounter::ReplicasIssued);
  return out;
}

DcrConfig sdc_config(bool replicate) {
  DcrConfig cfg;
  cfg.sdc_replication = replicate;
  return cfg;
}

// --------------------------------------------------------------- crc32c

TEST(Crc32c, KnownVector) {
  // The canonical CRC32C check value (iSCSI, RFC 3720 appendix B.4).
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32c, IncrementalChaining) {
  const std::uint32_t whole = crc32c("123456789", 9);
  const std::uint32_t part = crc32c("456789", 6, crc32c("123", 3));
  EXPECT_EQ(whole, part);
}

TEST(Crc32c, DoubleDigestIsBitExact) {
  EXPECT_NE(crc32c_double(0.0), crc32c_double(-0.0));
  EXPECT_NE(crc32c_double(1.0), crc32c_double(std::nextafter(1.0, 2.0)));
  EXPECT_EQ(crc32c_double(3.25), crc32c_double(3.25));
  const double nan1 = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(crc32c_double(nan1), crc32c_double(nan1));
}

// ---------------------------------------------------------------- taint

TEST(TaintTracker, SingleFutureTaintsProducer) {
  TaintTracker t;
  t.note_future(/*future=*/7, /*producer=*/3);
  EXPECT_FALSE(t.op_tainted(3));
  const auto newly = t.taint_future(7);
  ASSERT_EQ(newly.size(), 1u);
  EXPECT_EQ(newly[0], 3u);
  EXPECT_TRUE(t.op_tainted(3));
  // Re-observation is idempotent.
  EXPECT_TRUE(t.taint_future(7).empty());
  EXPECT_EQ(t.tainted_ops(), 1u);
  EXPECT_EQ(t.tainted_futures(), 1u);
}

TEST(TaintTracker, ReduceTaintsTransitively) {
  TaintTracker t;
  t.note_future_map(/*fm=*/11, /*index op=*/4);
  t.note_reduce(/*future=*/9, /*reduce op=*/5, /*fm=*/11);
  const auto newly = t.taint_future(9);
  // Both the reduce op and the index launch feeding it are tainted: the
  // corruption strikes the point tasks, not the fold.
  EXPECT_EQ(newly.size(), 2u);
  EXPECT_TRUE(t.op_tainted(5));
  EXPECT_TRUE(t.op_tainted(4));
}

TEST(TaintTracker, UnknownFutureTaintsNothing) {
  TaintTracker t;
  EXPECT_TRUE(t.taint_future(99).empty());
  EXPECT_EQ(t.tainted_ops(), 0u);
}

// ------------------------------------------------------------- injector

TEST(SdcInjector, RateZeroNeverCorrupts) {
  sim::FaultPlan plan({.seed = 5});
  for (std::uint64_t i = 0; i < 1000; ++i) {
    EXPECT_FALSE(plan.corrupt_value(i, 1.5).corrupted);
  }
  EXPECT_EQ(plan.stats().sdc_injected, 0u);
}

TEST(SdcInjector, DeterministicPerInstance) {
  sim::FaultConfig fc{.seed = 17};
  fc.sdc.rate = 0.5;
  sim::FaultPlan a(fc), b(fc);
  for (std::uint64_t i = 0; i < 256; ++i) {
    const auto fa = a.corrupt_value(i, 2.75);
    const auto fb = b.corrupt_value(i, 2.75);
    EXPECT_EQ(fa.corrupted, fb.corrupted) << i;
    EXPECT_EQ(fa.value, fb.value) << i;
  }
}

TEST(SdcInjector, EveryCorruptionIsDigestVisibleAndSignPreserving) {
  sim::FaultConfig fc{.seed = 23};
  fc.sdc.rate = 0.9;
  sim::FaultPlan plan(fc);
  std::uint64_t corrupted = 0;
  for (std::uint64_t i = 0; i < 512; ++i) {
    const double v = 0.125 * static_cast<double>(i + 1);
    const auto fate = plan.corrupt_value(i, v);
    if (!fate.corrupted) continue;
    ++corrupted;
    EXPECT_NE(crc32c_double(fate.value), crc32c_double(v)) << i;
    EXPECT_TRUE(std::isfinite(fate.value)) << i;
    EXPECT_GT(fate.value, 0.0) << i;  // mantissa-only: sign never flips
  }
  EXPECT_GT(corrupted, 400u);
  EXPECT_EQ(plan.stats().sdc_injected, corrupted);
  EXPECT_EQ(plan.stats().sdc_bitflips + plan.stats().sdc_perturbations, corrupted);
}

TEST(SdcInjector, ClassWeightZeroShieldsTaskClass) {
  sim::FaultConfig fc{.seed = 29};
  fc.sdc.rate = 0.9;
  sim::FaultPlan plan(fc);
  for (std::uint64_t i = 0; i < 256; ++i) {
    EXPECT_FALSE(plan.corrupt_value(i, 1.0, /*class_weight=*/0.0).corrupted);
  }
}

// ------------------------------------------------- executor config checks

using SdcConfigDeath = ::testing::Test;

TEST(SdcConfigDeath, RejectsSingleExecution) {
  DcrConfig cfg = sdc_config(true);
  cfg.sdc_replicas = 1;
  EXPECT_DEATH(run_residual(kNodes, cfg, 0.0, 0), "replication needs >= 2");
}

TEST(SdcConfigDeath, RejectsOneVoteQuorum) {
  DcrConfig cfg = sdc_config(true);
  cfg.sdc_quorum = 1;
  EXPECT_DEATH(run_residual(kNodes, cfg, 0.0, 0), "1-vote quorum");
}

TEST(SdcConfigDeath, RejectsUnreachableQuorum) {
  DcrConfig cfg = sdc_config(true);
  cfg.sdc_replicas = 2;
  cfg.sdc_quorum = 4;
  cfg.sdc_retry_budget = 1;
  EXPECT_DEATH(run_residual(kNodes, cfg, 0.0, 0), "unreachable");
}

// ------------------------------------------------------------ end-to-end

TEST(SdcReplication, ReplicatesOnlyTheControlTaintedChain) {
  const RunOut r = run_residual(kNodes, sdc_config(true), 0.0, 0);
  ASSERT_TRUE(r.stats.completed) << r.stats.abort_message;
  // Per step: the residual index launch + the reduce op are tainted; the
  // add_one/mul_two/stencil bulk is not replicated.
  EXPECT_EQ(r.stats.sdc_tainted_ops, 2 * kSteps);
  EXPECT_EQ(r.stats.sdc_tainted_futures, kSteps);
  EXPECT_EQ(r.stats.sdc_tickets, kSteps * kTiles);
  EXPECT_EQ(r.stats.sdc_replicas_issued, kSteps * kTiles);  // replicas = 2
  EXPECT_EQ(r.stats.sdc_corruptions_injected, 0u);
  EXPECT_EQ(r.stats.sdc_corruptions_detected, 0u);
  EXPECT_EQ(r.stats.sdc_corruptions_healed, 0u);
}

TEST(SdcReplication, LedgerDrainsAndMirrorsProf) {
  const RunOut r = run_residual(kNodes, sdc_config(true), 0.03, 0xA11CE);
  ASSERT_TRUE(r.stats.completed) << r.stats.abort_message;
  // Replication ledger invariant: every issued replica is accounted as
  // compared or lost, nothing in flight once the calendar drains.
  EXPECT_EQ(r.in_flight, 0u);
  EXPECT_EQ(r.stats.sdc_replicas_issued,
            r.stats.sdc_replicas_compared + r.stats.sdc_replicas_lost);
  EXPECT_EQ(r.prof_replicas_issued, r.stats.sdc_replicas_issued);
}

TEST(SdcReplication, DetectsAndHealsEveryInjectedCorruption) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const RunOut r = run_residual(kNodes, sdc_config(true), 0.05, seed);
    ASSERT_TRUE(r.stats.completed) << "seed " << seed << ": "
                                   << r.stats.abort_message;
    EXPECT_FALSE(r.stats.determinism_violation) << seed;
    EXPECT_GT(r.stats.sdc_corruptions_injected, 0u) << seed;
    // No message loss in this plan: detection is exact, not just >= 99%.
    EXPECT_EQ(r.stats.sdc_corruptions_detected, r.stats.sdc_corruptions_injected)
        << seed;
    EXPECT_GT(r.stats.sdc_corruptions_healed, 0u) << seed;
    EXPECT_LE(r.stats.sdc_corruptions_healed, r.stats.sdc_tickets) << seed;
  }
}

TEST(SdcReplication, UnreplicatedCorruptionIsSilentAndTimingInvisible) {
  // Replication off + SDC plan installed: values are corrupted silently —
  // that is the hazard.  Nothing detects them, the taint analysis (always on)
  // still sees the control chain, and the corruption has zero timing
  // footprint: two seeds with different corruption patterns run to the same
  // virtual makespan.
  const RunOut a = run_residual(kNodes, sdc_config(false), 0.05, 9);
  const RunOut b = run_residual(kNodes, sdc_config(false), 0.05, 10);
  ASSERT_TRUE(a.stats.completed);
  ASSERT_TRUE(b.stats.completed);
  EXPECT_EQ(a.stats.makespan, b.stats.makespan);
  EXPECT_EQ(a.stats.sdc_tickets, 0u);
  EXPECT_EQ(a.stats.sdc_tainted_ops, 2 * kSteps);
  EXPECT_GT(a.stats.sdc_corruptions_injected, 0u);
  EXPECT_EQ(a.stats.sdc_corruptions_detected, 0u);  // nobody watched
}

TEST(SdcReplication, StaleVotesAreAuditedNotCounted) {
  // replicas = 3, quorum = 2: the primary plus the first replica ballot
  // settle each ticket; the second replica's ballot lands stale.  The ledger
  // still drains, and stale clean ballots detect nothing.
  DcrConfig cfg = sdc_config(true);
  cfg.sdc_replicas = 3;
  cfg.sdc_quorum = 2;
  const RunOut r = run_residual(kNodes, cfg, 0.0, 0);
  ASSERT_TRUE(r.stats.completed) << r.stats.abort_message;
  EXPECT_EQ(r.stats.sdc_replicas_issued, 2 * kSteps * kTiles);
  EXPECT_GT(r.stats.sdc_stale_votes, 0u);
  EXPECT_EQ(r.in_flight, 0u);
  EXPECT_EQ(r.stats.sdc_replicas_issued,
            r.stats.sdc_replicas_compared + r.stats.sdc_replicas_lost);
  EXPECT_EQ(r.stats.sdc_corruptions_detected, 0u);
}

TEST(SdcReplication, ReplicaOnCrashedShardSurfacesAsLossNotHang) {
  // Crash one node mid-run while replication is on: replicas placed on (or
  // shipping digests through) the dead node surface as lost ballots and the
  // quorum re-executes elsewhere; recovery restores the shard and the run
  // completes with a drained ledger.
  const RunOut probe = run_residual(kNodes, sdc_config(true), 0.0, 0);
  ASSERT_TRUE(probe.stats.completed);
  sim::FaultConfig fc;
  fc.crashes.push_back({NodeId(1), probe.stats.makespan / 2});
  const RunOut r =
      run_residual(kNodes, sdc_config(true), 0.01, 0xC4A5, false, fc);
  ASSERT_TRUE(r.stats.completed) << r.stats.abort_message;
  ASSERT_EQ(r.stats.failures.size(), 1u);
  EXPECT_EQ(r.in_flight, 0u);
  EXPECT_EQ(r.stats.sdc_replicas_issued,
            r.stats.sdc_replicas_compared + r.stats.sdc_replicas_lost);
}

TEST(SdcReplication, ExhaustedRetryBudgetAbortsGracefully) {
  DcrConfig cfg = sdc_config(true);
  cfg.sdc_retry_budget = 0;  // first disagreement has nowhere to go
  const RunOut r = run_residual(kNodes, cfg, 0.5, 0xBAD);
  EXPECT_FALSE(r.stats.completed);
  EXPECT_NE(r.stats.abort_message.find("SDC quorum unresolved"), std::string::npos)
      << r.stats.abort_message;
}

TEST(SdcReplication, RepeatOffenderShardFailsOver) {
  DcrConfig cfg = sdc_config(true);
  cfg.sdc_suspect_threshold = 2;  // two out-voted ballots condemn a shard
  const RunOut r = run_residual(kNodes, cfg, 0.2, 0xF01D);
  ASSERT_TRUE(r.stats.completed) << r.stats.abort_message;
  EXPECT_GT(r.stats.sdc_failovers, 0u);
  EXPECT_GE(r.stats.failures.size(), 1u);  // the condemned shard was restarted
}

// ------------------------------------------------------- spy equivalence

TEST(SdcSpy, ReplicatedRunsRealizeTheUnreplicatedTaskGraph) {
  const RunOut off = run_residual(kNodes, sdc_config(false), 0.0, 0, true);
  const RunOut on_clean = run_residual(kNodes, sdc_config(true), 0.0, 0, true);
  const RunOut on_healed = run_residual(kNodes, sdc_config(true), 0.08, 5, true);
  ASSERT_TRUE(off.stats.completed && on_clean.stats.completed &&
              on_healed.stats.completed);
  ASSERT_GT(on_healed.stats.sdc_corruptions_healed, 0u);
  std::string why;
  EXPECT_TRUE(spy::graph_equivalent(off.trace, on_clean.trace, &why)) << why;
  EXPECT_TRUE(spy::graph_equivalent(off.trace, on_healed.trace, &why)) << why;
}

TEST(SdcSpy, GraphEquivalenceDetectsDifferentPrograms) {
  const RunOut a = run_residual(kNodes, sdc_config(false), 0.0, 0, true);
  sim::Machine machine(cluster(kNodes));
  FunctionRegistry functions;
  const auto fns = register_stencil_functions(functions, 1.0);
  DcrConfig cfg;
  cfg.record_trace = true;
  DcrRuntime rt(machine, functions, cfg);
  StencilConfig scfg = residual_stencil();
  scfg.steps = kSteps - 1;  // one step fewer: structurally different graph
  const DcrStats stats = rt.execute(make_stencil_app(scfg, fns));
  ASSERT_TRUE(stats.completed);
  std::string why;
  EXPECT_FALSE(spy::graph_equivalent(a.trace, *rt.trace(), &why));
  EXPECT_FALSE(why.empty());
}

// ------------------------------------------------------ SDC on/off sweep

// 100 seeded injection plans over the traced stencil-with-residual.  Each
// seed runs replication-off (the silent-corruption hazard, untouched
// behavior) and replication-on (corruptions detected and healed, ledger
// drained) and proves the two realize the same task graph.
//
// Detection is gated at the >= 99% acceptance bar *in aggregate*, not at
// exact equality per seed: with probability ~(rate^2)/52 per ticket two
// executions suffer the same mantissa bit-flip, agree on the wrong value,
// and out-vote the truth — digest voting is blind to identically-corrupted
// quorums (the classic NMR limit; vanishingly rare for real 64-bit SDC,
// amplified here by the injector's single-bit model).  Each such event
// hides at most 2 corruptions, so per seed the shortfall stays tiny.
TEST(SdcFuzz, HundredSeedOnOffSweepDetectsHealsAndPreservesTheGraph) {
  std::uint64_t injected_total = 0, detected_total = 0, healed_total = 0;
  for (std::uint64_t index = 0; index < 100; ++index) {
    const std::uint64_t seed = fuzz::seed_for_label("sdc", index);
    const double rate = 0.01 + 0.04 * static_cast<double>(index % 5);

    const RunOut off = run_residual(kNodes, sdc_config(false), rate, seed, true);
    ASSERT_TRUE(off.stats.completed) << "seed " << index << ": "
                                     << off.stats.abort_message;
    EXPECT_EQ(off.stats.sdc_corruptions_detected, 0u);

    DcrConfig on_cfg = sdc_config(true);
    on_cfg.sdc_retry_budget = 8;  // survive 0.17-rate pileups on one ticket
    const RunOut on = run_residual(kNodes, on_cfg, rate, seed, true);
    if (!on.stats.completed) {
      // The one acceptable non-completion: every re-execution round kept
      // disagreeing and the runtime refused the unverifiable result loudly.
      // Detection accounting excludes aborted tickets, so skip this seed.
      EXPECT_NE(on.stats.abort_message.find("SDC quorum unresolved"),
                std::string::npos)
          << "seed " << index << ": " << on.stats.abort_message;
      continue;
    }
    EXPECT_FALSE(on.stats.determinism_violation) << index;
    // No message loss in these plans: every shortfall is a same-digest
    // collision, each hiding at most 2 corruptions.
    EXPECT_GE(on.stats.sdc_corruptions_detected + 6,
              on.stats.sdc_corruptions_injected)
        << "seed " << index << " rate " << rate;
    EXPECT_EQ(on.in_flight, 0u) << index;
    EXPECT_EQ(on.stats.sdc_replicas_issued,
              on.stats.sdc_replicas_compared + on.stats.sdc_replicas_lost)
        << index;
    injected_total += on.stats.sdc_corruptions_injected;
    detected_total += on.stats.sdc_corruptions_detected;
    healed_total += on.stats.sdc_corruptions_healed;
    std::string why;
    EXPECT_TRUE(spy::graph_equivalent(off.trace, on.trace, &why))
        << "seed " << index << ": " << why;
  }
  ASSERT_GT(injected_total, 0u);
  EXPECT_GE(static_cast<double>(detected_total),
            0.99 * static_cast<double>(injected_total))
      << detected_total << " / " << injected_total;
  EXPECT_GT(healed_total, 0u);
}

}  // namespace
}  // namespace dcr::core
