// Tests anchored to specific figures and claims of the paper:
//  * exhaustive model checking of the §2 semantics (every interleaving of
//    small programs yields the DEPseq graph and never deadlocks),
//  * the three control-determinism violations of Figures 4-6 reproduced and
//    caught by the §3 checker,
//  * multi-level region trees (footnote 2) through the full pipeline,
//  * Figure 11: changing one launch's sharding function turns an elided
//    dependence into a cross-shard fence,
//  * the Graphviz export used for dependence debugging.
#include <gtest/gtest.h>

#include "analysis/random_program.hpp"
#include "analysis/semantics.hpp"
#include "apps/stencil.hpp"
#include "dcr/runtime.hpp"
#include "runtime/graph_dump.hpp"

namespace dcr {
namespace {

// ----------------------------------------- exhaustive interleaving checks

TEST(Exhaustive, EveryInterleavingOfCrossShardChainMatches) {
  // Two shards, three dependent groups: the Tb gate must serialize cross-
  // shard registration in every one of the reachable interleavings.
  an::AProgram p{{an::ATask{TaskId(0), ShardId(0)}},
                 {an::ATask{TaskId(1), ShardId(1)}},
                 {an::ATask{TaskId(2), ShardId(0)}}};
  const an::Oracle chain = [](TaskId a, TaskId b) { return a.value + 1 == b.value; };
  const auto graphs = an::analyze_replicated_exhaustive(p, 2, chain);
  ASSERT_EQ(graphs.size(), 1u);
  EXPECT_EQ(graphs[0], an::analyze_sequential(p, chain));
}

TEST(Exhaustive, RandomSmallProgramsAllInterleavings) {
  an::RandomProgramConfig cfg;
  cfg.num_groups = 5;
  cfg.max_group_width = 3;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Philox4x32 gen(seed, 3);
    an::RandomProgram rp = an::generate_random_program(cfg, gen);
    for (std::size_t shards : {2u, 3u}) {
      const an::AProgram sharded = an::apply_cyclic_sharding(rp.program, shards);
      const auto graphs = an::analyze_replicated_exhaustive(sharded, shards, rp.oracle);
      ASSERT_EQ(graphs.size(), 1u) << "seed " << seed << " shards " << shards;
      EXPECT_EQ(graphs[0], an::analyze_sequential(rp.program, rp.oracle));
    }
  }
}

TEST(Exhaustive, IndependentGroupsReachManyStatesButOneGraph) {
  // Fully independent groups: interleavings abound (every shard order), yet
  // the single final graph has no edges.
  an::AProgram p;
  for (std::uint64_t i = 0; i < 6; ++i) {
    p.push_back({an::ATask{TaskId(i), ShardId(static_cast<std::uint32_t>(i % 3))}});
  }
  const auto graphs =
      an::analyze_replicated_exhaustive(p, 3, [](TaskId, TaskId) { return false; });
  ASSERT_EQ(graphs.size(), 1u);
  EXPECT_EQ(graphs[0].num_edges(), 0u);
}

// ------------------------------------- Figures 4-6: determinism violations

struct Harness {
  sim::Machine machine;
  core::FunctionRegistry functions;
  core::DcrRuntime runtime;
  explicit Harness(std::size_t nodes)
      : machine({.num_nodes = nodes,
                 .compute_procs_per_node = 1,
                 .network = {.alpha = us(1), .ns_per_byte = 0.1}}),
        runtime(machine, functions) {}
};

TEST(Figure4, BranchingOnNonReplicatedRandomnessIsCaught) {
  // import random; if random.random() < 0.5: run_algorithm0() else: ...
  // with per-shard (non-replicated) randomness: shards pick different
  // algorithms and the checker flags the divergent launch.
  Harness h(4);
  const FunctionId algo0 = h.functions.register_simple("algorithm0", us(1), 0.0);
  const FunctionId algo1 = h.functions.register_simple("algorithm1", us(1), 0.0);
  const auto stats = h.runtime.execute([&](core::Context& ctx) {
    Philox4x32 local_rng(/*seed=*/ctx.shard_id().value);  // the bug: per-shard seed
    core::TaskLaunch launch;
    launch.fn = local_rng.next_double() < 0.5 ? algo0 : algo1;
    ctx.launch(launch);
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.determinism_violation);
}

TEST(Figure5, BranchingOnFutureIsReadyIsCaught) {
  // if future.is_ready(): run inline else: launch with precondition —
  // resolution timing differs per shard, so some shards launch an extra task.
  Harness h(4);
  const FunctionId produce = h.functions.register_simple(
      "produce", us(50), 0.0, [](const core::PointTaskInfo&) { return 1.0; });
  const FunctionId consume = h.functions.register_simple("consume", us(1), 0.0);
  const auto stats = h.runtime.execute([&](core::Context& ctx) {
    core::TaskLaunch p;
    p.fn = produce;
    p.wants_future = true;
    const core::Future f = ctx.launch(p);
    // Spin-wait on readiness: the broadcast delivers the value at different
    // virtual times per shard (tree depth), so the spin counts diverge —
    // the realistic form of the Figure 5 bug.
    int spins = 0;
    while (!ctx.future_is_ready(f) && spins < 10000) ++spins;
    if (spins % 2 == 1) {
      core::TaskLaunch c;
      c.fn = consume;
      ctx.launch(c);  // only some shards make this call
    }
    ctx.execution_fence();
  });
  // Either the call streams diverged (violation) or the run could not
  // complete cleanly; the checker must not report a clean pass with
  // divergent streams.
  EXPECT_TRUE(stats.determinism_violation || !stats.completed);
}

TEST(Figure6, IterationOrderDivergenceIsCaught) {
  // for region in set(regions): launch(region) — Python set iteration order
  // differs per shard; here: a per-shard permutation of launch arguments.
  Harness h(3);
  const FunctionId fn = h.functions.register_simple("t", us(1), 0.0);
  const auto stats = h.runtime.execute([&](core::Context& ctx) {
    std::vector<std::int64_t> items{10, 20, 30};
    // The bug: per-shard "hash randomization" of the iteration order.
    std::rotate(items.begin(), items.begin() + ctx.shard_id().value % items.size(),
                items.end());
    for (std::int64_t item : items) {
      core::TaskLaunch launch;
      launch.fn = fn;
      launch.args = {item};
      ctx.launch(launch);
    }
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.determinism_violation);
  EXPECT_TRUE(stats.violation_message.find("launch") != std::string::npos);
}

TEST(Figure6, DefinedOrderFixesTheViolation) {
  // "Such situations are easily fixed by using a data structure with a
  // defined order, such as a list."
  Harness h(3);
  const FunctionId fn = h.functions.register_simple("t", us(1), 0.0);
  const auto stats = h.runtime.execute([&](core::Context& ctx) {
    for (std::int64_t item : {10, 20, 30}) {
      core::TaskLaunch launch;
      launch.fn = fn;
      launch.args = {item};
      ctx.launch(launch);
    }
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
}

// ------------------------------------------------ multi-level region trees

TEST(MultiLevelTrees, NestedPartitionLaunchesAnalyzeCorrectly) {
  // Footnote 2: "For region trees with multiple levels of partitioning, a
  // more general form of this function can choose any subregion in the
  // subtree."  Launch over a second-level partition and verify ordering
  // against first-level launches.
  Harness h(2);
  const FunctionId fn = h.functions.register_simple("t", us(2), 1.0);
  const auto stats = h.runtime.execute([&](core::Context& ctx) {
    using namespace rt;
    FieldSpaceId fs = ctx.create_field_space();
    const FieldId f = ctx.allocate_field(fs, 8, "f");
    const RegionTreeId tree = ctx.create_region(Rect::r1(0, 1023), fs);
    const PartitionId top = ctx.partition_equal(ctx.root(tree), 4);
    // Partition each top piece into 2 sub-pieces: an 8-piece leaf partition
    // rooted two levels down.
    std::vector<Rect> leaf_rects;
    for (std::uint64_t c = 0; c < 4; ++c) {
      const IndexSpaceId sub = ctx.forest().subregion(top, c);
      const PartitionId nested = ctx.partition_equal(sub, 2);
      for (std::uint64_t k = 0; k < 2; ++k) {
        leaf_rects.push_back(ctx.forest().bounds(ctx.forest().subregion(nested, k)));
      }
    }
    // A flat 8-piece partition of the root with the same rects, used as a
    // launch domain over the leaves.
    const PartitionId leaves = ctx.create_partition(ctx.root(tree), leaf_rects, true);

    core::IndexLaunch coarse;
    coarse.fn = fn;
    coarse.domain = Rect::r1(0, 3);
    coarse.requirements.push_back(
        rt::GroupRequirement::on_partition(top, {f}, Privilege::ReadWrite));
    ctx.index_launch(coarse);

    core::IndexLaunch fine;
    fine.fn = fn;
    fine.domain = Rect::r1(0, 7);
    fine.requirements.push_back(
        rt::GroupRequirement::on_partition(leaves, {f}, Privilege::ReadWrite));
    ctx.index_launch(fine);
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  EXPECT_EQ(stats.point_tasks_launched, 4u + 8u);
  // Different partitions of the same data: the dependence fences.
  EXPECT_GT(stats.fences_inserted, 0u);
}

// --------------------------------------------- Figure 11: sharding change

TEST(Figure11, DifferentShardingFunctionForcesFence) {
  auto fences = [](bool mixed_sharding) {
    Harness h(4);
    const FunctionId fn = h.functions.register_simple("t", us(2), 1.0);
    const auto stats = h.runtime.execute([&](core::Context& ctx) {
      using namespace rt;
      FieldSpaceId fs = ctx.create_field_space();
      const FieldId f = ctx.allocate_field(fs, 8, "f");
      const RegionTreeId tree = ctx.create_region(Rect::r1(0, 1023), fs);
      const PartitionId part = ctx.partition_equal(ctx.root(tree), 8);
      for (int step = 0; step < 6; ++step) {
        core::IndexLaunch l;
        l.fn = fn;
        l.domain = Rect::r1(0, 7);
        l.sharding = (mixed_sharding && step % 2 == 1)
                         ? core::ShardingRegistry::cyclic()
                         : core::ShardingRegistry::blocked();
        l.requirements.push_back(
            rt::GroupRequirement::on_partition(part, {f}, Privilege::ReadWrite));
        ctx.index_launch(l);
      }
      ctx.execution_fence();
    });
    EXPECT_TRUE(stats.completed);
    return stats.fences_inserted;
  };
  // Same sharding every step: every step-to-step dependence elided.
  // Alternating sharding functions (the Figure 11 scenario): fences.
  EXPECT_GT(fences(true), fences(false));
}

// -------------------------------------------------------------- DOT export

TEST(GraphDump, DotContainsEveryNodeAndEdge) {
  rt::TaskGraph g;
  for (std::uint64_t i = 0; i < 3; ++i) g.add_task(TaskId(i));
  g.add_edge(TaskId(0), TaskId(1));
  g.add_edge(TaskId(1), TaskId(2));
  const std::string dot = rt::to_dot(g, [](TaskId t) {
    return "task_" + std::to_string(t.value);
  });
  EXPECT_NE(dot.find("digraph task_graph"), std::string::npos);
  EXPECT_NE(dot.find("t0 [label=\"task_0\"]"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1;"), std::string::npos);
  EXPECT_NE(dot.find("t1 -> t2;"), std::string::npos);
  EXPECT_EQ(dot.find("t2 -> "), std::string::npos);
}

TEST(GraphDump, RealizedStencilGraphExports) {
  core::DcrConfig cfg;
  cfg.record_task_graph = true;
  sim::Machine machine({.num_nodes = 2,
                        .compute_procs_per_node = 1,
                        .network = {.alpha = us(1), .ns_per_byte = 0.1}});
  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  core::DcrRuntime rt(machine, functions, cfg);
  rt.execute(apps::make_stencil_app({.cells_per_tile = 32, .tiles = 4, .steps = 2}, fns));
  const std::string dot = rt::to_dot(rt.realized_graph());
  // 4 tiles x 3 launches x 2 steps + fill.
  EXPECT_EQ(static_cast<std::size_t>(std::count(dot.begin(), dot.end(), '[')) - 1,
            4u * 3u * 2u + 1u);  // -1 for the node [shape=...] attribute line
  EXPECT_NE(dot.find("->"), std::string::npos);
}

}  // namespace
}  // namespace dcr
