// Tests for the message-level ring all-reduce and its agreement with the
// analytic model used by the training workloads.
#include <gtest/gtest.h>

#include "apps/nn.hpp"
#include "sim/collective.hpp"
#include "sim/ring.hpp"

namespace dcr::sim {
namespace {

std::vector<NodeId> nodes_for(std::size_t n) {
  std::vector<NodeId> out;
  for (std::size_t i = 0; i < n; ++i) out.push_back(NodeId(static_cast<std::uint32_t>(i)));
  return out;
}

TEST(RingAllReduce, SingleRankIsImmediate) {
  Simulator sim;
  Network net(sim, 1, {});
  RingAllReduce<int> ring(sim, net, nodes_for(1), 64, [](int a, int b) { return a + b; });
  Event e = ring.arrive(0, 7);
  sim.run();
  EXPECT_TRUE(e.has_triggered());
  EXPECT_EQ(ring.result(), 7);
}

TEST(RingAllReduce, CombinesAllContributions) {
  for (std::size_t n : {2u, 3u, 5u, 8u}) {
    Simulator sim;
    Network net(sim, n, {.alpha = us(1), .ns_per_byte = 0.1, .local_latency = ns(50)});
    RingAllReduce<int> ring(sim, net, nodes_for(n), 1024,
                            [](int a, int b) { return a + b; });
    std::vector<Event> done;
    for (std::size_t r = 0; r < n; ++r) {
      done.push_back(ring.arrive(r, static_cast<int>(1u << r)));
    }
    sim.run();
    for (std::size_t r = 0; r < n; ++r) {
      EXPECT_TRUE(done[r].has_triggered()) << "n=" << n << " rank " << r;
    }
    EXPECT_EQ(ring.result(), static_cast<int>((1u << n) - 1)) << n;
  }
}

TEST(RingAllReduce, StragglerGatesEveryone) {
  Simulator sim;
  Network net(sim, 4, {.alpha = us(1), .ns_per_byte = 0.1, .local_latency = ns(50)});
  RingAllReduce<int> ring(sim, net, nodes_for(4), 4096, [](int a, int b) { return a + b; });
  std::vector<Event> done(4);
  done[0] = ring.arrive(0, 1);
  done[1] = ring.arrive(1, 1);
  done[3] = ring.arrive(3, 1);
  sim.schedule(ms(2), [&] { done[2] = ring.arrive(2, 1); });
  sim.run();
  for (const Event& e : done) {
    ASSERT_TRUE(e.has_triggered());
    EXPECT_GE(e.trigger_time(), ms(2));
  }
}

TEST(RingAllReduce, MatchesAnalyticModelWithinTolerance) {
  // The simulated ring must land near the closed form the NN benches use:
  //   2 * bytes * (n-1)/n / bandwidth + 2(n-1) * alpha.
  const NetworkParams params{.alpha = us(1), .ns_per_byte = 0.1, .local_latency = ns(50)};
  for (std::size_t n : {2u, 4u, 8u, 16u}) {
    for (std::uint64_t bytes : {std::uint64_t{64} << 10, std::uint64_t{8} << 20}) {
      Simulator sim;
      Network net(sim, n, params);
      RingAllReduce<int> ring(sim, net, nodes_for(n), bytes,
                              [](int a, int b) { return a + b; });
      for (std::size_t r = 0; r < n; ++r) ring.arrive(r, 1);
      const double simulated = static_cast<double>(sim.run());
      const double analytic =
          static_cast<double>(apps::ring_allreduce_time(bytes, n, params));
      EXPECT_GT(simulated, 0.5 * analytic) << "n=" << n << " bytes=" << bytes;
      EXPECT_LT(simulated, 2.5 * analytic) << "n=" << n << " bytes=" << bytes;
    }
  }
}

TEST(RingAllReduce, BandwidthScalesBetterThanTree) {
  // For large payloads the ring moves ~2*bytes total per rank while the
  // binomial tree serializes full payloads along the critical path: the
  // ring must win as n grows.
  const NetworkParams params{.alpha = us(1), .ns_per_byte = 0.1, .local_latency = ns(50)};
  const std::uint64_t bytes = 32 << 20;
  const std::size_t n = 16;
  SimTime ring_time, tree_time;
  {
    Simulator sim;
    Network net(sim, n, params);
    RingAllReduce<int> ring(sim, net, nodes_for(n), bytes,
                            [](int a, int b) { return a + b; });
    for (std::size_t r = 0; r < n; ++r) ring.arrive(r, 1);
    ring_time = sim.run();
  }
  {
    Simulator sim;
    Network net(sim, n, params);
    Collective<int> tree(sim, net, nodes_for(n), CollectiveKind::AllReduce, bytes,
                         [](int a, int b) { return a + b; });
    for (std::size_t r = 0; r < n; ++r) tree.arrive(r, 1);
    tree_time = sim.run();
  }
  EXPECT_LT(ring_time, tree_time);
}

}  // namespace
}  // namespace dcr::sim
