// Unit tests for dense rectangle geometry.
#include <gtest/gtest.h>

#include <set>

#include "runtime/geometry.hpp"

namespace dcr::rt {
namespace {

TEST(Rect, VolumeAndEmpty) {
  EXPECT_EQ(Rect::r1(0, 9).volume(), 10u);
  EXPECT_EQ(Rect::r2(0, 3, 0, 4).volume(), 20u);
  EXPECT_EQ(Rect::r3(0, 1, 0, 1, 0, 1).volume(), 8u);
  EXPECT_TRUE(Rect::r1(5, 4).is_empty());
  EXPECT_EQ(Rect::r1(5, 4).volume(), 0u);
  EXPECT_TRUE(Rect::empty(2).is_empty());
}

TEST(Rect, Contains) {
  const Rect r = Rect::r2(0, 9, 0, 9);
  EXPECT_TRUE(r.contains(Point::p2(0, 0)));
  EXPECT_TRUE(r.contains(Point::p2(9, 9)));
  EXPECT_FALSE(r.contains(Point::p2(10, 0)));
  EXPECT_TRUE(r.contains(Rect::r2(2, 5, 3, 7)));
  EXPECT_FALSE(r.contains(Rect::r2(2, 12, 3, 7)));
  EXPECT_TRUE(r.contains(Rect::empty(2)));
}

TEST(Rect, Intersection) {
  const Rect a = Rect::r1(0, 9), b = Rect::r1(5, 14);
  EXPECT_EQ(intersect(a, b), Rect::r1(5, 9));
  EXPECT_TRUE(overlaps(a, b));
  EXPECT_FALSE(overlaps(Rect::r1(0, 4), Rect::r1(5, 9)));
  EXPECT_TRUE(intersect(Rect::r2(0, 3, 0, 3), Rect::r2(5, 8, 0, 3)).is_empty());
}

TEST(Rect, BoundingUnion) {
  EXPECT_EQ(bounding_union(Rect::r1(0, 3), Rect::r1(8, 9)), Rect::r1(0, 9));
  EXPECT_EQ(bounding_union(Rect::empty(1), Rect::r1(2, 4)), Rect::r1(2, 4));
}

TEST(Rect, Subtract1D) {
  // Middle cut -> two pieces.
  auto pieces = subtract(Rect::r1(0, 9), Rect::r1(3, 6));
  ASSERT_EQ(pieces.size(), 2u);
  EXPECT_EQ(pieces[0], Rect::r1(0, 2));
  EXPECT_EQ(pieces[1], Rect::r1(7, 9));
  // No overlap -> original back.
  pieces = subtract(Rect::r1(0, 4), Rect::r1(10, 12));
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], Rect::r1(0, 4));
  // Full cover -> nothing.
  EXPECT_TRUE(subtract(Rect::r1(3, 6), Rect::r1(0, 9)).empty());
}

TEST(Rect, Subtract2DVolumeConserved) {
  const Rect a = Rect::r2(0, 9, 0, 9);
  const Rect b = Rect::r2(3, 12, 4, 6);
  const auto pieces = subtract(a, b);
  std::uint64_t vol = 0;
  for (const Rect& p : pieces) {
    vol += p.volume();
    EXPECT_TRUE(a.contains(p));
    EXPECT_FALSE(overlaps(p, b));
  }
  // Pieces are pairwise disjoint.
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    for (std::size_t j = i + 1; j < pieces.size(); ++j) {
      EXPECT_FALSE(overlaps(pieces[i], pieces[j]));
    }
  }
  EXPECT_EQ(vol, a.volume() - intersect(a, b).volume());
}

TEST(Rect, Subtract3DProperty) {
  // Randomized-ish sweep of cuts; volume conservation + disjointness.
  const Rect a = Rect::r3(0, 5, 0, 5, 0, 5);
  for (std::int64_t lo = -2; lo <= 6; lo += 2) {
    for (std::int64_t hi = lo; hi <= 7; hi += 3) {
      const Rect b = Rect::r3(lo, hi, lo + 1, hi + 1, lo, hi + 2);
      std::uint64_t vol = 0;
      for (const Rect& p : subtract(a, b)) {
        vol += p.volume();
        EXPECT_FALSE(overlaps(p, b));
      }
      EXPECT_EQ(vol, a.volume() - intersect(a, b).volume());
    }
  }
}

TEST(Point, IterationOrderAndCount) {
  std::vector<Point> pts;
  for_each_point(Rect::r2(0, 1, 0, 2), [&](const Point& p) { pts.push_back(p); });
  ASSERT_EQ(pts.size(), 6u);
  EXPECT_EQ(pts[0], Point::p2(0, 0));
  EXPECT_EQ(pts[1], Point::p2(1, 0));  // x fastest
  EXPECT_EQ(pts[5], Point::p2(1, 2));
}

TEST(Point, LinearizeRoundTrip) {
  const Rect r = Rect::r3(2, 4, -1, 1, 0, 2);
  std::set<std::uint64_t> seen;
  for_each_point(r, [&](const Point& p) {
    const std::uint64_t idx = linearize(r, p);
    EXPECT_LT(idx, r.volume());
    EXPECT_TRUE(seen.insert(idx).second);
    EXPECT_EQ(delinearize(r, idx), p);
  });
  EXPECT_EQ(seen.size(), r.volume());
}

}  // namespace
}  // namespace dcr::rt
