// Dependence templates (dcr/template.hpp): property tests and negative tests.
//
// The headline property, checked over fuzzed loop-structured programs: a run
// with template capture/validate/replay realizes the same task graph as a run
// with fresh analysis every iteration, and both pass the dcr-spy offline
// verifier.  Negative tests seed stale-template mutations between capture and
// validation and prove the validation pass catches them; unit tests drive the
// DEPseq audit directly.  Template/recovery interaction: a shard crash while
// a cached template is mid-replay drops the dead shard's templates and the
// replacement rebuilds from scratch with an equivalent graph.
#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "common/philox.hpp"
#include "dcr/runtime.hpp"
#include "dcr/template.hpp"
#include "dcr_fuzz_programs.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "spy/trace.hpp"
#include "spy/verify.hpp"

namespace dcr::core {
namespace {

sim::MachineConfig cluster(std::size_t nodes) {
  return {.num_nodes = nodes,
          .compute_procs_per_node = 1,
          .network = {.alpha = us(1), .ns_per_byte = 0.1, .local_latency = ns(50)}};
}

struct LoopRun {
  DcrStats stats;
  spy::Trace trace;
  rt::TaskGraph graph;  // realized, transitively closed
};

LoopRun run_loop(const fuzz::LoopDcrProgram& p, bool use_trace, std::size_t nodes) {
  sim::Machine machine(cluster(nodes));
  FunctionRegistry functions;
  const FunctionId fn = functions.register_simple("t", us(1), 1.0);
  DcrConfig cfg;
  cfg.record_trace = true;
  cfg.record_task_graph = true;
  DcrRuntime rt(machine, functions, cfg);
  LoopRun out;
  out.stats = rt.execute(fuzz::materialize_loop(p, fn, use_trace));
  out.trace = *rt.trace();
  out.graph = rt.realized_graph().transitive_closure();
  return out;
}

void expect_clean(const LoopRun& run, const char* what, std::uint64_t seed) {
  EXPECT_TRUE(run.stats.completed) << what << " seed " << seed;
  EXPECT_FALSE(run.stats.determinism_violation) << what << " seed " << seed;
  const spy::VerifyReport report = spy::verify(run.trace);
  EXPECT_TRUE(report.ok()) << what << " seed " << seed << ": " << report.summary()
                           << (report.findings.empty() ? "" : "\n  " + report.findings[0].message);
}

// ------------------------------------------------- on/off graph equivalence

class TemplateFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// 200 fuzzed loop programs: template replay must be invisible in the realized
// partial order, and both executions must satisfy the offline verifier.
TEST_P(TemplateFuzz, ReplayedGraphMatchesFreshAnalysis) {
  const std::uint64_t seed = GetParam();
  Philox4x32 rng(fuzz::seed_for_label("template", seed), /*stream=*/5);
  const fuzz::LoopDcrProgram program = fuzz::generate_loop(rng, /*tiles=*/6);
  const LoopRun on = run_loop(program, /*use_trace=*/true, /*nodes=*/4);
  const LoopRun off = run_loop(program, /*use_trace=*/false, /*nodes=*/4);
  expect_clean(on, "templates on", seed);
  expect_clean(off, "templates off", seed);
  EXPECT_TRUE(on.graph.same_partial_order(off.graph)) << "seed " << seed;
  EXPECT_EQ(on.stats.point_tasks_launched, off.stats.point_tasks_launched)
      << "seed " << seed;
  EXPECT_EQ(off.stats.template_replays, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TemplateFuzz, ::testing::Range<std::uint64_t>(0, 200));

// ------------------------------------------------ deterministic steady state

// A window whose decisions are iteration-invariant (an untraced priming
// launch makes iteration 0's cross-window dependence identical to steady
// state), so validation passes on the second occurrence and every later
// iteration replays.  `after_first` (optional) runs between iteration 0 and 1
// — the hook the stale-mutation tests use to corrupt the recording.
struct PrimedRun {
  DcrStats stats;
  rt::TaskGraph graph;
};

PrimedRun run_primed_loop(bool use_trace,
                          const std::function<void(DcrRuntime&, Context&)>& after_first = {}) {
  sim::Machine machine(cluster(2));
  FunctionRegistry functions;
  const FunctionId fn = functions.register_simple("t", us(1), 1.0);
  DcrConfig cfg;
  cfg.record_task_graph = true;
  DcrRuntime rt(machine, functions, cfg);
  const DcrStats stats = rt.execute([&](Context& ctx) {
    FieldSpaceId fs = ctx.create_field_space();
    const FieldId f = ctx.allocate_field(fs, 8, "f");
    const RegionTreeId tree = ctx.create_region(rt::Rect::r1(0, 127), fs);
    const PartitionId part = ctx.partition_equal(ctx.root(tree), 4);
    auto launch_step = [&] {
      IndexLaunch l;
      l.fn = fn;
      l.domain = rt::Rect::r1(0, 3);
      l.requirements.push_back(
          rt::GroupRequirement::on_partition(part, {f}, rt::Privilege::ReadWrite));
      ctx.index_launch(l);
    };
    launch_step();  // untraced priming launch: iteration 0 sees steady state
    for (int i = 0; i < 5; ++i) {
      if (use_trace) ctx.begin_trace(TraceId(9));
      launch_step();
      if (use_trace) ctx.end_trace(TraceId(9));
      if (i == 0 && after_first) after_first(rt, ctx);
    }
    ctx.execution_fence();
  });
  PrimedRun out;
  out.stats = stats;
  out.graph = rt.realized_graph().transitive_closure();
  return out;
}

TEST(TemplateLifecycle, SteadyStateValidatesOnceThenReplays) {
  const PrimedRun off = run_primed_loop(false);
  const PrimedRun on = run_primed_loop(true);
  EXPECT_TRUE(on.stats.completed);
  EXPECT_FALSE(on.stats.determinism_violation);
  // Per shard: iteration 0 captures, iteration 1's shadow compare + DEPseq
  // audit pass (the priming launch made the capture steady-state), and
  // iterations 2..4 replay.
  EXPECT_EQ(on.stats.templates_captured, 2u);
  EXPECT_EQ(on.stats.templates_validated, 2u);
  EXPECT_EQ(on.stats.template_validation_failures, 0u);
  EXPECT_EQ(on.stats.template_replays, 6u);  // 3 windows x 2 shards
  EXPECT_TRUE(on.graph.same_partial_order(off.graph));
}

// Between capture and validation, corrupt the recording so it claims the
// window has no dependences at all.  Replaying it would race iteration i
// against iteration i-1; the validation pass must catch it instead.
TEST(TemplateLifecycle, StaleDroppedDepIsCaughtByValidation) {
  const PrimedRun off = run_primed_loop(false);
  const PrimedRun on = run_primed_loop(true, [](DcrRuntime& rt, Context& ctx) {
    TemplateManager& tm = rt.shard_templates(ctx.shard_id());
    DependenceTemplate* t = tm.find(TraceId(9));
    ASSERT_NE(t, nullptr);
    ASSERT_EQ(t->state, DependenceTemplate::State::Recorded);
    ASSERT_FALSE(t->ops.empty());
    ASSERT_FALSE(t->ops[0].deps.empty());
    t->ops[0].deps.clear();
    t->ops[0].fences.clear();
  });
  EXPECT_TRUE(on.stats.completed);
  // One shadow-compare failure per shard; the window is re-recorded from the
  // fresh decisions and the corrupted version never replays.
  EXPECT_EQ(on.stats.template_validation_failures, 2u);
  EXPECT_GT(on.stats.template_replays, 0u);
  EXPECT_TRUE(on.graph.same_partial_order(off.graph));
}

// Same, corrupting a recorded privilege: the per-op summary compare fires.
TEST(TemplateLifecycle, StalePrivilegeIsCaughtByValidation) {
  const PrimedRun off = run_primed_loop(false);
  const PrimedRun on = run_primed_loop(true, [](DcrRuntime& rt, Context& ctx) {
    DependenceTemplate* t = rt.shard_templates(ctx.shard_id()).find(TraceId(9));
    ASSERT_NE(t, nullptr);
    ASSERT_FALSE(t->ops.empty());
    ASSERT_FALSE(t->ops[0].summaries.empty());
    t->ops[0].summaries[0].privilege = rt::Privilege::ReadOnly;
  });
  EXPECT_TRUE(on.stats.completed);
  EXPECT_EQ(on.stats.template_validation_failures, 2u);
  EXPECT_TRUE(on.graph.same_partial_order(off.graph));
}

// ------------------------------------------------------------- DEPseq audit

// Minimal hand-built templates driven straight through audit_template().
ReqSummary index_summary(RegionTreeId tree, FieldId f, PartitionId part,
                         rt::Privilege priv) {
  ReqSummary s;
  s.tree = tree;
  s.fields = {f};
  s.privilege = priv;
  s.is_index = true;
  s.domain = rt::Rect::r1(0, 3);
  s.partition = part;
  return s;
}

TEST(TemplateAudit, NonCausalDependenceFails) {
  rt::RegionForest forest;
  DependenceTemplate t;
  TemplateOp op;
  op.deps.push_back({/*prev_offset=*/0, /*abs_source=*/0, /*absolute=*/false,
                     RegionTreeId(0), FieldId(0), /*elided=*/true});
  t.ops.push_back(op);
  std::string why;
  EXPECT_FALSE(audit_template(t, forest, &why));
  EXPECT_NE(why.find("non-causal"), std::string::npos) << why;
}

TEST(TemplateAudit, CrossShardDependenceWithoutFenceFails) {
  rt::RegionForest forest;
  DependenceTemplate t;
  t.ops.emplace_back();
  TemplateOp op;
  op.deps.push_back({/*prev_offset=*/1, /*abs_source=*/0, /*absolute=*/false,
                     RegionTreeId(0), FieldId(0), /*elided=*/false});
  t.ops.push_back(op);  // no fence entry for offset 1
  std::string why;
  EXPECT_FALSE(audit_template(t, forest, &why));
  EXPECT_NE(why.find("no matching fence"), std::string::npos) << why;
}

TEST(TemplateAudit, UnprovableElisionFails) {
  rt::RegionForest forest;
  const FieldSpaceId fs = forest.create_field_space();
  const RegionTreeId tree = forest.create_tree(rt::Rect::r1(0, 63), fs);
  const IndexSpaceId root = forest.root(tree);
  const PartitionId p1 = forest.partition_equal(root, 4);
  const PartitionId p2 = forest.partition_with_halo(root, 4, 2);  // aliased

  DependenceTemplate t;
  TemplateOp writer;
  writer.summaries.push_back(index_summary(tree, FieldId(0), p1, rt::Privilege::ReadWrite));
  t.ops.push_back(writer);
  TemplateOp reader;
  reader.summaries.push_back(index_summary(tree, FieldId(0), p2, rt::Privilege::ReadWrite));
  reader.deps.push_back({/*prev_offset=*/1, /*abs_source=*/0, /*absolute=*/false, tree,
                         FieldId(0), /*elided=*/true});
  t.ops.push_back(reader);

  std::string why;
  EXPECT_FALSE(audit_template(t, forest, &why));
  EXPECT_NE(why.find("not provably shard-local"), std::string::npos) << why;

  // Control: the same dependence between two launches of the *same* disjoint
  // partition is provably shard-local and the audit accepts it.
  t.ops[1].summaries[0] = index_summary(tree, FieldId(0), p1, rt::Privilege::ReadWrite);
  EXPECT_TRUE(audit_template(t, forest, &why)) << why;
}

// ------------------------------------------------- recovery interaction

struct FaultHarness {
  sim::Machine machine;
  sim::FaultPlan plan;
  FunctionRegistry functions;
  DcrRuntime runtime;

  FaultHarness(std::size_t nodes, sim::FaultConfig fcfg, DcrConfig cfg = {})
      : machine(cluster(nodes)), plan(std::move(fcfg)), runtime(machine, functions, [&cfg] {
          cfg.record_task_graph = true;
          return cfg;
        }()) {
    machine.install_faults(plan);
  }
};

// A traced loop whose control program stays in lockstep with execution (one
// execution fence per iteration): a mid-run crash then lands while the
// survivors still have trace windows to open, so the recovery-epoch
// invalidation is observable, not just the drop on the dead shard.  Each
// window holds a disjoint write followed by a halo read — a cross-shard
// dependence, so replay also re-registers fence sources.
void fenced_loop_app(Context& ctx, FunctionId fn, bool use_trace) {
  FieldSpaceId fs = ctx.create_field_space();
  const FieldId f = ctx.allocate_field(fs, 8, "f");
  const RegionTreeId tree = ctx.create_region(rt::Rect::r1(0, 8 * 64 - 1), fs);
  const IndexSpaceId root = ctx.root(tree);
  const PartitionId disj = ctx.partition_equal(root, 8);
  const PartitionId halo = ctx.partition_with_halo(root, 8, 2);
  auto step = [&] {
    IndexLaunch w;
    w.fn = fn;
    w.domain = rt::Rect::r1(0, 7);
    w.requirements.push_back(
        rt::GroupRequirement::on_partition(disj, {f}, rt::Privilege::ReadWrite));
    ctx.index_launch(w);
    IndexLaunch r;
    r.fn = fn;
    r.domain = rt::Rect::r1(0, 7);
    r.requirements.push_back(
        rt::GroupRequirement::on_partition(halo, {f}, rt::Privilege::ReadOnly));
    ctx.index_launch(r);
  };
  ctx.fill(root, {f});
  step();  // priming: iteration 0's cross-window offsets match steady state
  for (int i = 0; i < 12; ++i) {
    if (use_trace) ctx.begin_trace(TraceId(7));
    step();
    if (use_trace) ctx.end_trace(TraceId(7));
    ctx.execution_fence();  // keeps control from running ahead of execution
  }
}

// Fail-stop crash of a shard while its cached template is mid-replay: the
// replacement starts template-less, re-captures during fast-forward, the
// survivors' templates are invalidated by the recovery epoch bump, and the
// realized graph still matches the fault-free reference.
TEST(TemplateRecovery, CrashMidReplayRebuildsFromScratch) {
  const std::size_t nodes = 4;

  SimTime fault_free_makespan = 0;
  rt::TaskGraph reference;
  DcrStats fault_free;
  {
    sim::Machine machine(cluster(nodes));
    FunctionRegistry functions;
    const FunctionId fn = functions.register_simple("t", us(5), 1.0);
    DcrConfig cfg;
    cfg.record_task_graph = true;
    DcrRuntime rt(machine, functions, cfg);
    fault_free = rt.execute(
        [&](Context& ctx) { fenced_loop_app(ctx, fn, /*use_trace=*/true); });
    ASSERT_TRUE(fault_free.completed);
    fault_free_makespan = fault_free.makespan;
    reference = rt.realized_graph().transitive_closure();
  }
  // The fault-free traced run must actually be replaying by mid-run.
  ASSERT_GT(fault_free.template_replays, 0u);

  sim::FaultConfig fcfg;
  fcfg.seed = fuzz::seed_for_label("template", 1000);
  fcfg.crashes.push_back({NodeId(2), fault_free_makespan * 3 / 5});
  FaultHarness h(nodes, fcfg);
  const FunctionId fn = h.functions.register_simple("t", us(5), 1.0);
  const DcrStats stats =
      h.runtime.execute([&](Context& ctx) { fenced_loop_app(ctx, fn, /*use_trace=*/true); });

  EXPECT_TRUE(stats.completed) << stats.abort_message;
  EXPECT_FALSE(stats.determinism_violation);
  ASSERT_EQ(stats.failures.size(), 1u);
  const FailureReport& rep = stats.failures[0];
  EXPECT_TRUE(rep.recovered);
  // The dead shard held a validated template for the stencil window.
  EXPECT_GT(rep.templates_dropped, 0u);
  EXPECT_NE(rep.describe().find("templates dropped"), std::string::npos);
  // The recovery epoch bump invalidated the survivors' templates too.
  EXPECT_GT(stats.template_invalidations, 0u);
  // Everyone re-captured and the steady state replays again after recovery.
  EXPECT_GT(stats.template_replays, 0u);
  // Recovery rebuilt the analysis from scratch: same realized partial order.
  EXPECT_TRUE(reference.same_partial_order(h.runtime.realized_graph().transitive_closure()));
}

}  // namespace
}  // namespace dcr::core
