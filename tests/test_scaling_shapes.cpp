// Shape-regression tests: miniature versions of each figure's qualitative
// claim, so a change that silently breaks a bench's story fails CI rather
// than only being visible in bench output.
#include <gtest/gtest.h>

#include "apps/legate/solvers.hpp"
#include "apps/nn.hpp"
#include "apps/pennant.hpp"
#include "apps/stencil.hpp"
#include "apps/taskbench.hpp"
#include "baselines/central.hpp"
#include "baselines/mpi.hpp"
#include "baselines/scr.hpp"
#include "baselines/tf.hpp"
#include "dcr/runtime.hpp"

namespace dcr {
namespace {

sim::MachineConfig cluster(std::size_t nodes, std::size_t procs = 1) {
  return {.num_nodes = nodes,
          .compute_procs_per_node = procs,
          .network = {.alpha = us(1), .ns_per_byte = 0.1}};
}

// Figure 12/13 claim: per-node DCR throughput is ~flat under weak scaling
// while the centralized controller's degrades.
TEST(Shape, WeakScalingDcrFlatCentralDegrades) {
  auto throughput_per_node = [](std::size_t nodes, bool central) {
    core::FunctionRegistry functions;
    const auto fns = apps::register_stencil_functions(functions, 10.0);
    apps::StencilConfig cfg{.cells_per_tile = 20000, .tiles = nodes, .steps = 10};
    sim::Machine machine(cluster(nodes));
    SimTime makespan;
    if (central) {
      baselines::CentralConfig ccfg;
      ccfg.analysis_cost_per_task = us(40);
      baselines::CentralRuntime rt(machine, functions, ccfg);
      makespan = rt.execute(apps::make_stencil_app(cfg, fns)).makespan;
    } else {
      core::DcrRuntime rt(machine, functions);
      makespan = rt.execute(apps::make_stencil_app(cfg, fns)).makespan;
    }
    // Weak scaling: work per node is constant, so per-node throughput is
    // inversely proportional to makespan alone.
    return 1.0 / static_cast<double>(makespan);
  };
  const double dcr_drop = throughput_per_node(2, false) / throughput_per_node(16, false);
  const double central_drop = throughput_per_node(2, true) / throughput_per_node(16, true);
  EXPECT_LT(dcr_drop, 1.3);      // near-flat
  EXPECT_GT(central_drop, 1.5);  // visible degradation
}

// Figure 12 claim: SCR is never slower than DCR but within 2x.
TEST(Shape, ScrLeadsDcrByLessThanTwoX) {
  auto makespan = [](bool scr) {
    core::FunctionRegistry functions;
    const auto fns = apps::register_stencil_functions(functions, 1.0);
    sim::Machine machine(cluster(8));
    core::DcrRuntime rt(machine, functions,
                        scr ? baselines::scr_config() : core::DcrConfig{});
    return rt.execute(
        apps::make_stencil_app({.cells_per_tile = 2000, .tiles = 8, .steps = 10}, fns))
        .makespan;
  };
  const double ratio = static_cast<double>(makespan(false)) /
                       static_cast<double>(makespan(true));
  EXPECT_GE(ratio, 1.0);
  EXPECT_LT(ratio, 2.0);
}

// Figure 14 claim ordering: CPU-only << staged CUDA < {GPUDirect, DCR}.
TEST(Shape, PennantVariantOrdering) {
  const std::size_t nodes = 4, gpus = 32;
  auto mpi = [&](const baselines::MpiPennantConfig& variant) {
    sim::Machine machine(cluster(nodes, 8));
    baselines::MpiPennantConfig cfg = variant;
    cfg.zones_per_rank = 50000;
    cfg.cycles = 5;
    cfg.compute_ns_per_zone = 7.2;
    return baselines::run_mpi_pennant(machine, gpus, cfg).makespan;
  };
  core::FunctionRegistry functions;
  const auto fns = apps::register_pennant_functions(functions, 2.0);
  sim::Machine machine(cluster(nodes, 8));
  core::DcrRuntime rt(machine, functions);
  const SimTime dcr =
      rt.execute(apps::make_pennant_app({.zones_per_piece = 50000, .pieces = gpus,
                                         .cycles = 5},
                                        fns))
          .makespan;
  const SimTime cpu = mpi(baselines::mpi_pennant_cpu());
  const SimTime cuda = mpi(baselines::mpi_pennant_cuda());
  const SimTime gpudirect = mpi(baselines::mpi_pennant_gpudirect());
  EXPECT_GT(cpu, 5 * cuda);
  EXPECT_GT(cuda, gpudirect);
  EXPECT_LT(static_cast<double>(dcr), static_cast<double>(cuda));
}

// Figure 18 claim: with a fixed global batch, hybrid parallelism keeps
// improving with GPU count while data parallelism saturates.
TEST(Shape, CandleHybridScalesDataParallelSaturates) {
  auto iter_time = [](std::size_t gpus, apps::TrainConfig::Strategy strategy) {
    core::FunctionRegistry functions;
    const auto fns = apps::register_train_functions(functions);
    apps::TrainConfig cfg;
    cfg.gpus = gpus;
    cfg.iterations = 2;
    cfg.strategy = strategy;
    cfg.compute_scale = 1.0 / static_cast<double>(gpus);
    cfg.net = cluster(1).network;
    const std::size_t nodes = (gpus + 3) / 4;
    sim::Machine machine(cluster(nodes, 4));
    core::DcrConfig dcfg;
    dcfg.shards_per_node = 4;
    core::DcrRuntime rt(machine, functions, dcfg);
    return rt.execute(apps::make_train_app(apps::NetworkSpec::candle_uno(), cfg, fns))
        .makespan;
  };
  using Strategy = apps::TrainConfig::Strategy;
  // Hybrid: 4 -> 32 GPUs still improves meaningfully.
  EXPECT_LT(static_cast<double>(iter_time(32, Strategy::Hybrid)),
            0.7 * static_cast<double>(iter_time(4, Strategy::Hybrid)));
  // Data parallel: comm-bound, improvement stalls.
  EXPECT_GT(static_cast<double>(iter_time(32, Strategy::DataParallel)),
            0.7 * static_cast<double>(iter_time(4, Strategy::DataParallel)));
}

// Figure 19/20 claim: Dask-style centralized execution of the same ndarray
// program decays with socket count; Legate/DCR does not.
TEST(Shape, DaskDecaysLegateFlat) {
  auto iterations_per_sec = [](std::size_t sockets, bool dask) {
    core::FunctionRegistry functions;
    const auto fns = apps::legate::register_legate_functions(functions, 1.0);
    apps::legate::LogisticRegressionConfig cfg{.samples_per_piece = 50000,
                                               .features = 16, .iterations = 5};
    sim::Machine machine(cluster(sockets));
    SimTime makespan;
    if (dask) {
      cfg.pieces = sockets;
      baselines::CentralConfig ccfg;
      ccfg.analysis_cost_per_task = ms(1);
      baselines::CentralRuntime rt(machine, functions, ccfg);
      makespan = rt.execute(apps::legate::make_logistic_regression(cfg, fns)).makespan;
    } else {
      core::DcrRuntime rt(machine, functions);
      makespan = rt.execute(apps::legate::make_logistic_regression(cfg, fns)).makespan;
    }
    return 5.0 / static_cast<double>(makespan);
  };
  const double legate_drop = iterations_per_sec(2, false) / iterations_per_sec(16, false);
  const double dask_drop = iterations_per_sec(2, true) / iterations_per_sec(16, true);
  EXPECT_LT(legate_drop, 1.2);
  EXPECT_GT(dask_drop, 2.0);
}

// Figure 21 claim: determinism checks cost almost nothing; tracing lowers
// the minimum effective task granularity.
TEST(Shape, MetgTracingHelpsChecksFree) {
  auto metg = [](bool trace, bool safe) {
    apps::TaskBenchConfig cfg{.width = 8, .steps = 12, .copies = 4};
    cfg.use_trace = trace;
    return apps::find_metg(cfg, 8, [&](const apps::TaskBenchConfig& c) {
      core::FunctionRegistry functions;
      const FunctionId fn = apps::register_taskbench_function(functions);
      sim::Machine machine(cluster(8));
      core::DcrConfig dcfg;
      dcfg.determinism_checks = safe;
      core::DcrRuntime rt(machine, functions, dcfg);
      return rt.execute(apps::make_taskbench_app(c, fn)).makespan;
    });
  };
  const SimTime base = metg(false, false);
  const SimTime safe = metg(false, true);
  const SimTime traced = metg(true, false);
  EXPECT_LT(traced, base);  // tracing lowers METG
  // Checks change METG by well under 2x (paper: negligible).
  EXPECT_LT(static_cast<double>(std::max(safe, base)),
            1.5 * static_cast<double>(std::min(safe, base)));
}

}  // namespace
}  // namespace dcr
