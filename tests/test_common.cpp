// Unit tests for src/common: strong ids, 128-bit hashing, Philox RNG.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_set>

#include "common/hash128.hpp"
#include "common/philox.hpp"
#include "common/types.hpp"

namespace dcr {
namespace {

// ---------------------------------------------------------------- strong ids

TEST(StrongId, DefaultIsInvalid) {
  NodeId n;
  EXPECT_FALSE(n.valid());
  EXPECT_EQ(n, NodeId::invalid());
}

TEST(StrongId, ValueRoundTrip) {
  NodeId n(7);
  EXPECT_TRUE(n.valid());
  EXPECT_EQ(n.value, 7u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(NodeId(1), NodeId(2));
  EXPECT_EQ(NodeId(3), NodeId(3));
  EXPECT_NE(NodeId(3), NodeId(4));
}

TEST(StrongId, UsableAsMapKeys) {
  std::map<OpId, int> ordered{{OpId(2), 20}, {OpId(1), 10}};
  EXPECT_EQ(ordered.begin()->first, OpId(1));
  std::unordered_set<FieldId> fields{FieldId(1), FieldId(2), FieldId(1)};
  EXPECT_EQ(fields.size(), 2u);
}

TEST(TimeLiterals, Scale) {
  EXPECT_EQ(us(1), ns(1000));
  EXPECT_EQ(ms(1), us(1000));
  EXPECT_EQ(sec(1), ms(1000));
}

// ------------------------------------------------------------------- hash128

TEST(Hash128, DeterministicForSameInput) {
  auto h = [] {
    Hasher128 hh;
    hh.value(42).string("launch_task").value(NodeId(3).value);
    return hh.finish();
  };
  EXPECT_EQ(h(), h());
}

TEST(Hash128, DifferentInputsDiffer) {
  Hasher128 a, b;
  a.value(1);
  b.value(2);
  EXPECT_NE(a.finish(), b.finish());
}

TEST(Hash128, OrderSensitive) {
  Hasher128 a, b;
  a.value(1).value(2);
  b.value(2).value(1);
  EXPECT_NE(a.finish(), b.finish());
}

TEST(Hash128, StringLengthFraming) {
  // ("ab", "c") must not collide with ("a", "bc").
  Hasher128 a, b;
  a.string("ab").string("c");
  b.string("a").string("bc");
  EXPECT_NE(a.finish(), b.finish());
}

TEST(Hash128, EmptyInputHasStableValue) {
  EXPECT_EQ(Hasher128().finish(), Hasher128().finish());
}

TEST(Hash128, NoCollisionsOverManySmallInputs) {
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
  for (std::uint32_t i = 0; i < 20000; ++i) {
    Hasher128 h;
    h.value(i);
    const Hash128 v = h.finish();
    EXPECT_TRUE(seen.insert({v.lo, v.hi}).second) << "collision at " << i;
  }
}

// -------------------------------------------------------------------- philox

TEST(Philox, KnownAnswerZeroKeyZeroCounter) {
  // Reference vector from the Random123 known-answer tests (philox4x32, 10
  // rounds, all-zero counter and key).
  const auto out = Philox4x32::block({0, 0, 0, 0}, {0, 0});
  EXPECT_EQ(out[0], 0x6627e8d5u);
  EXPECT_EQ(out[1], 0xe169c58du);
  EXPECT_EQ(out[2], 0xbc57ac4cu);
  EXPECT_EQ(out[3], 0x9b00dbd8u);
}

TEST(Philox, KnownAnswerAllOnes) {
  const auto out = Philox4x32::block({0xffffffffu, 0xffffffffu, 0xffffffffu, 0xffffffffu},
                                     {0xffffffffu, 0xffffffffu});
  EXPECT_EQ(out[0], 0x408f276du);
  EXPECT_EQ(out[1], 0x41c83b0eu);
  EXPECT_EQ(out[2], 0xa20bc7c6u);
  EXPECT_EQ(out[3], 0x6d5451fdu);
}

TEST(Philox, SameSeedSameSequence) {
  Philox4x32 a(123, 5), b(123, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Philox, DifferentStreamsDiffer) {
  Philox4x32 a(123, 0), b(123, 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u32() == b.next_u32());
  EXPECT_LT(same, 3);
}

TEST(Philox, DoubleInUnitInterval) {
  Philox4x32 g(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = g.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Philox, NextBelowInRange) {
  Philox4x32 g(9);
  for (std::uint64_t n : {1ull, 2ull, 7ull, 100ull, 1000000007ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(g.next_below(n), n);
  }
}

TEST(Philox, NextBelowRoughlyUniform) {
  Philox4x32 g(11);
  int buckets[10] = {};
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) buckets[g.next_below(10)]++;
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(buckets[b], kDraws / 10, kDraws / 100) << "bucket " << b;
  }
}

TEST(Philox, RandomAccessBlockMatchesCounter) {
  // block_at(i) must be a pure function independent of stream position.
  Philox4x32 g(42, 3);
  const auto b5 = g.block_at(5);
  g.next_u64();
  g.next_u64();
  EXPECT_EQ(g.block_at(5), b5);
}

}  // namespace
}  // namespace dcr
