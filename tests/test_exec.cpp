// Real-threads execution backend (src/exec): primitive units and stress
// tests for the lock-free transport, plus the differential suite that runs
// every fuzz program through BOTH backends — the discrete-event simulator
// (the oracle) and the OS-thread runtime — and demands spy-identical task
// graphs, identical per-shard call-hash streams, and identical analysis
// statistics.  The sweeps ride the "exec" ctest label (see check-exec) and
// are also run under ThreadSanitizer by check-hardened.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "apps/stencil.hpp"
#include "common/philox.hpp"
#include "dcr/runtime.hpp"
#include "dcr_fuzz_programs.hpp"
#include "exec/clock.hpp"
#include "exec/collective.hpp"
#include "exec/gate.hpp"
#include "exec/queue.hpp"
#include "exec/thread_runtime.hpp"
#include "spy/trace.hpp"
#include "spy/verify.hpp"

namespace dcr::exec {
namespace {

using core::ApplicationMain;
using core::DcrConfig;
using core::DcrRuntime;
using core::DcrStats;
using core::FunctionRegistry;

// ===========================================================================
// Primitive units
// ===========================================================================

TEST(SpscQueue, FifoOrderAndBackpressure) {
  SpscQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99)) << "full queue must exert backpressure";
  for (int i = 0; i < 4; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(SpscQueue, CapacityRoundsUpToPowerOfTwo) {
  SpscQueue<int> q(5);
  EXPECT_EQ(q.capacity(), 8u);
  SpscQueue<int> tiny(0);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(SpscQueue, CloseDrainsPendingItems) {
  SpscQueue<int> q(8);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  q.close();
  EXPECT_FALSE(q.try_push(3)) << "closed queue rejects new items";
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value()) << "drained + closed pop returns empty";
}

TEST(MpmcQueue, FifoPerProducerAndBackpressure) {
  MpmcQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q.try_pop().value(), i);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(FenceCollective, ReusableAcrossGenerations) {
  constexpr std::uint32_t kRanks = 4;
  constexpr int kRounds = 50;
  FenceCollective fence(kRanks);
  std::atomic<int> inside{0};
  std::atomic<bool> torn{false};
  std::vector<std::thread> threads;
  for (std::uint32_t r = 0; r < kRanks; ++r) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        inside.fetch_add(1);
        fence.arrive_and_wait();
        // Everyone from this round must have arrived before anyone leaves.
        if (inside.load() < kRanks * (round + 1)) torn.store(true);
        fence.arrive_and_wait();  // second barrier so rounds can't overlap
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(torn.load());
  EXPECT_EQ(fence.generation(), static_cast<std::uint64_t>(2 * kRounds));
}

TEST(ValueCollective, CombinesInRankOrderRegardlessOfArrival) {
  // A deliberately non-commutative combine exposes any arrival-order
  // dependence: acc = 2*acc + v yields a unique value per rank order.
  constexpr std::uint32_t kRanks = 6;
  double expected = 0.0;
  for (std::uint32_t r = 0; r < kRanks; ++r) expected = 2.0 * expected + (r + 1);
  for (int trial = 0; trial < 20; ++trial) {
    ValueCollective coll(kRanks, 0.0, [](double a, double b) { return 2.0 * a + b; });
    std::vector<std::thread> threads;
    for (std::uint32_t r = 0; r < kRanks; ++r) {
      threads.emplace_back([&, r] { coll.arrive(r, r + 1.0); });
    }
    for (auto& t : threads) t.join();
    ASSERT_TRUE(coll.ready());
    EXPECT_EQ(coll.result(), expected);
  }
}

TEST(ConcurrencyGate, NeverExceedsSlotCap) {
  constexpr std::uint32_t kSlots = 3;
  ConcurrencyGate gate(kSlots);
  std::atomic<std::uint32_t> inside{0};
  std::atomic<std::uint32_t> peak{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        gate.acquire();
        const std::uint32_t now = inside.fetch_add(1) + 1;
        std::uint32_t prev = peak.load();
        while (now > prev && !peak.compare_exchange_weak(prev, now)) {
        }
        inside.fetch_sub(1);
        gate.release();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(peak.load(), kSlots);
}

TEST(ConcurrencyGate, BlocksWhenSlotsExhausted) {
  ConcurrencyGate gate(2);
  gate.acquire();
  gate.acquire();  // both slots held by this thread
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    gate.acquire();
    acquired.store(true, std::memory_order_release);
    gate.release();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(acquired.load(std::memory_order_acquire))
      << "gate admitted a third holder with both slots taken";
  gate.release();  // frees exactly one slot; the waiter must now proceed
  waiter.join();
  EXPECT_TRUE(acquired.load(std::memory_order_acquire));
  gate.release();
}

TEST(ConcurrencyGate, UncappedIsPassThrough) {
  ConcurrencyGate gate(0);
  EXPECT_FALSE(gate.enabled());
  gate.acquire();  // must not block or count
  gate.release();
}

TEST(WallClock, MonotonicRealNanoseconds) {
  WallClock clock;
  const SimTime a = clock.now();
  const SimTime b = clock.now();
  EXPECT_LE(a, b);
  // A real sleep must advance the reading by roughly that much.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_GE(clock.now() - b, static_cast<SimTime>(1'000'000));
}

// ===========================================================================
// Stress (ISSUE satellite: fan-in, backpressure, shutdown-while-blocked)
// ===========================================================================

TEST(QueueStress, MpmcMultiProducerFanIn) {
  // The ValueCollective fan-in shape: many producers, one consumer, a queue
  // much smaller than the item count so the full/empty edges are hot.
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 1000;
  MpmcQueue<std::uint64_t> q(16);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push((static_cast<std::uint64_t>(p) << 32) | i));
      }
    });
  }
  std::vector<std::uint32_t> last_seen(kProducers, 0);
  std::uint64_t popped = 0;
  std::thread consumer([&] {
    while (popped < kProducers * kPerProducer) {
      auto v = q.pop();
      ASSERT_TRUE(v.has_value());
      const int p = static_cast<int>(*v >> 32);
      const std::uint32_t i = static_cast<std::uint32_t>(*v);
      if (i > 0) EXPECT_EQ(i, last_seen[p] + 1) << "per-producer FIFO broken";
      last_seen[p] = i;
      popped++;
    }
  });
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(popped, static_cast<std::uint64_t>(kProducers) * kPerProducer);
}

TEST(QueueStress, SpscFullQueueBackpressure) {
  // 1000 iterations of a capacity-2 ring: the producer is almost always
  // blocked on a full queue, the consumer almost always on an empty one.
  constexpr std::uint64_t kItems = 1000;
  SpscQueue<std::uint64_t> q(2);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) ASSERT_TRUE(q.push(i));
  });
  std::uint64_t expect = 0;
  std::thread consumer([&] {
    while (expect < kItems) {
      auto v = q.pop();
      ASSERT_TRUE(v.has_value());
      ASSERT_EQ(*v, expect) << "SPSC order broken under backpressure";
      expect++;
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(expect, kItems);
}

TEST(QueueStress, ShutdownWhileBlocked) {
  // 1000 iterations: a consumer parked on an empty queue and a producer
  // parked on a full one must both return promptly once close() lands —
  // the only assertion is termination (a hang here is the bug).
  for (int iter = 0; iter < 1000; ++iter) {
    SpscQueue<int> q(2);
    std::thread consumer([&] {
      while (q.pop().has_value()) {
      }
    });
    std::thread producer([&] {
      int i = 0;
      while (q.push(i) && ++i < 8) {
      }
    });
    q.close();
    consumer.join();
    producer.join();
  }
}

TEST(QueueStress, MpmcShutdownWhileBlocked) {
  for (int iter = 0; iter < 1000; ++iter) {
    MpmcQueue<int> q(2);
    std::thread popper([&] { (void)q.pop(); });
    std::thread pusher([&] {
      int i = 0;
      while (q.push(i) && ++i < 4) {
      }
    });
    q.close();
    popper.join();
    pusher.join();
  }
}

// ===========================================================================
// Differential harness: simulator backend as the oracle
// ===========================================================================

sim::MachineConfig cluster(std::size_t nodes) {
  return {.num_nodes = nodes,
          .compute_procs_per_node = 1,
          .network = {.alpha = us(1), .ns_per_byte = 0.1}};
}

struct BackendRun {
  DcrStats stats;
  spy::Trace trace;
  // Non-volatile per-shard prof counters (wall-time Ns counters excluded).
  std::vector<std::vector<std::uint64_t>> counters;
  std::vector<std::uint64_t> globals;
};

constexpr prof::Counter kParityCounters[] = {
    prof::Counter::CoarseOps,          prof::Counter::TracedCoarseOps,
    prof::Counter::FineOps,            prof::Counter::TracedFineOps,
    prof::Counter::FinePoints,         prof::Counter::FenceWaits,
    prof::Counter::FutureWaits,        prof::Counter::ExecutionFences,
    prof::Counter::WindowsClosed,      prof::Counter::TemplateWindowHits,
    prof::Counter::TemplateWindowMisses, prof::Counter::StaticSkipOps,
    prof::Counter::StaticSkipPoints,
};

constexpr prof::GlobalCounter kParityGlobals[] = {
    prof::GlobalCounter::FenceDecisions, prof::GlobalCounter::FencesIssued,
    prof::GlobalCounter::FencesElided,   prof::GlobalCounter::FenceCollectives,
    prof::GlobalCounter::FutureCollectives,
};

void harvest_counters(const prof::Profiler& prof, std::size_t shards, BackendRun* out) {
  out->counters.resize(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    for (prof::Counter c : kParityCounters) {
      out->counters[s].push_back(prof.shard(static_cast<std::uint32_t>(s)).get(c));
    }
  }
  for (prof::GlobalCounter g : kParityGlobals) {
    out->globals.push_back(prof.global().get(g));
  }
}

struct DiffOptions {
  bool statics_check = false;
  bool disable_fence_elision = false;
};

BackendRun run_sim(const ApplicationMain& app, FunctionRegistry& functions,
                   std::size_t shards, const DiffOptions& opt = {}) {
  sim::Machine machine(cluster(shards));
  DcrConfig cfg;
  cfg.record_trace = true;
  cfg.statics_check = opt.statics_check;
  cfg.disable_fence_elision = opt.disable_fence_elision;
  DcrRuntime rt(machine, functions, cfg);
  BackendRun out;
  out.stats = rt.execute(app);
  out.trace = *rt.trace();
  harvest_counters(rt.profiler(), shards, &out);
  return out;
}

BackendRun run_threads(const ApplicationMain& app, FunctionRegistry& functions,
                       std::size_t shards, const DiffOptions& opt = {}) {
  ThreadConfig cfg;
  cfg.num_shards = shards;
  cfg.record_trace = true;
  cfg.statics_check = opt.statics_check;
  cfg.disable_fence_elision = opt.disable_fence_elision;
  ThreadRuntime rt(functions, cfg);
  BackendRun out;
  out.stats = rt.execute(app);
  out.trace = *rt.trace();
  harvest_counters(rt.profiler(), shards, &out);
  return out;
}

// The load-bearing assertion: both backends produced the same observable
// execution.  `volatile` quantities — wall/virtual makespans, busy times,
// bytes_moved/messages (no physical model on threads), and statics cache
// hits (per-shard prover replicas vs the simulator's single prover) — are
// deliberately excluded.
void expect_equivalent(const BackendRun& sim_run, const BackendRun& thr_run,
                       const char* what) {
  ASSERT_TRUE(sim_run.stats.completed) << what << ": simulator run failed";
  ASSERT_TRUE(thr_run.stats.completed)
      << what << ": threads run failed: " << thr_run.stats.abort_message;
  EXPECT_FALSE(sim_run.stats.determinism_violation) << what;
  EXPECT_FALSE(thr_run.stats.determinism_violation)
      << what << ": " << thr_run.stats.violation_message;

  // Task graph: same tasks (op, point, accesses) and same dependence edges.
  std::string why;
  EXPECT_TRUE(spy::graph_equivalent(sim_run.trace, thr_run.trace, &why))
      << what << ": " << why;

  // §3 call streams: per shard, the same calls with the same hashes in the
  // same order on both backends.
  ASSERT_EQ(sim_run.trace.calls.size(), thr_run.trace.calls.size()) << what;
  for (std::size_t s = 0; s < sim_run.trace.calls.size(); ++s) {
    const auto& a = sim_run.trace.calls[s];
    const auto& b = thr_run.trace.calls[s];
    ASSERT_EQ(a.size(), b.size()) << what << ": call count diverged on shard " << s;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].name, b[i].name) << what << ": shard " << s << " call " << i;
      ASSERT_TRUE(a[i].hash == b[i].hash)
          << what << ": hash diverged at shard " << s << " call " << i << " ("
          << a[i].name << ")";
    }
  }

  // Analysis statistics.
  const DcrStats& a = sim_run.stats;
  const DcrStats& b = thr_run.stats;
  EXPECT_EQ(a.ops_issued, b.ops_issued) << what;
  EXPECT_EQ(a.point_tasks_launched, b.point_tasks_launched) << what;
  EXPECT_EQ(a.fences_inserted, b.fences_inserted) << what;
  EXPECT_EQ(a.fences_elided, b.fences_elided) << what;
  EXPECT_EQ(a.coarse_deps, b.coarse_deps) << what;
  EXPECT_EQ(a.determinism_checks, b.determinism_checks) << what;
  EXPECT_EQ(a.traced_ops, b.traced_ops) << what;
  EXPECT_EQ(a.templates_captured, b.templates_captured) << what;
  EXPECT_EQ(a.templates_validated, b.templates_validated) << what;
  EXPECT_EQ(a.template_replays, b.template_replays) << what;
  EXPECT_EQ(a.template_invalidations, b.template_invalidations) << what;
  EXPECT_EQ(a.template_validation_failures, b.template_validation_failures) << what;
  EXPECT_EQ(a.statics_resolved_ops, b.statics_resolved_ops) << what;
  EXPECT_EQ(a.statics_unresolved_ops, b.statics_unresolved_ops) << what;
  EXPECT_EQ(a.statics_skipped_points, b.statics_skipped_points) << what;

  // Non-volatile prof counters, per shard and global.
  ASSERT_EQ(sim_run.counters.size(), thr_run.counters.size()) << what;
  for (std::size_t s = 0; s < sim_run.counters.size(); ++s) {
    EXPECT_EQ(sim_run.counters[s], thr_run.counters[s])
        << what << ": prof counters diverged on shard " << s;
  }
  EXPECT_EQ(sim_run.globals, thr_run.globals) << what << ": global prof counters";
}

// ------------------------------------------------------ basic functionality

TEST(ThreadBackend, SingleShardSmoke) {
  FunctionRegistry functions;
  const FunctionId fn = functions.register_simple("t", us(1), 1.0);
  ThreadConfig cfg;
  cfg.num_shards = 1;
  ThreadRuntime rt(functions, cfg);
  const DcrStats stats = rt.execute([fn](core::Context& ctx) {
    const FieldSpaceId fs = ctx.create_field_space();
    const FieldId f = ctx.allocate_field(fs, 8, "x");
    const RegionTreeId tree = ctx.create_region(rt::Rect::r1(0, 63), fs);
    const IndexSpaceId root = ctx.root(tree);
    const PartitionId part = ctx.partition_equal(root, 4);
    ctx.fill(root, {f});
    core::IndexLaunch l;
    l.fn = fn;
    l.domain = rt::Rect::r1(0, 3);
    l.requirements.push_back(
        rt::GroupRequirement::on_partition(part, {f}, rt::Privilege::ReadWrite));
    ctx.index_launch(l);
  });
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.point_tasks_launched, 4u);
}

TEST(ThreadBackend, FuturesBroadcastAndReduce) {
  FunctionRegistry functions;
  const FunctionId fn = functions.register_simple(
      "valued", us(1), 0.0,
      [](const core::PointTaskInfo& info) {
        return 10.0 + static_cast<double>(info.point[0]);
      });
  for (std::size_t shards : {1u, 2u, 4u}) {
    ThreadConfig cfg;
    cfg.num_shards = shards;
    ThreadRuntime rt(functions, cfg);
    double single = 0.0, reduced = 0.0;
    const DcrStats stats = rt.execute([&, fn](core::Context& ctx) {
      const FieldSpaceId fs = ctx.create_field_space();
      const FieldId f = ctx.allocate_field(fs, 8, "x");
      const RegionTreeId tree = ctx.create_region(rt::Rect::r1(0, 63), fs);
      const IndexSpaceId root = ctx.root(tree);
      const PartitionId part = ctx.partition_equal(root, 4);
      ctx.fill(root, {f});
      // Single task with a future: only the owner executes, all observe.
      core::TaskLaunch tl;
      tl.fn = fn;
      tl.requirements.push_back(
          {root, {f}, rt::Privilege::ReadWrite, rt::kNoRedop});
      tl.wants_future = true;
      single = ctx.get_future(ctx.launch(tl));
      // Index launch reduced to one future: the all-reduce collective.
      core::IndexLaunch il;
      il.fn = fn;
      il.domain = rt::Rect::r1(0, 3);
      il.requirements.push_back(
          rt::GroupRequirement::on_partition(part, {f}, rt::Privilege::ReadWrite));
      il.wants_futures = true;
      const core::FutureMap fm = ctx.index_launch(il);
      reduced = ctx.get_future(ctx.reduce_future_map(fm, core::ReduceOp::Sum));
    });
    ASSERT_TRUE(stats.completed) << shards << " shards: " << stats.abort_message;
    EXPECT_EQ(single, 10.0) << shards;           // point 0 of a single task
    EXPECT_EQ(reduced, 10 + 11 + 12 + 13) << shards;
    EXPECT_FALSE(stats.determinism_violation) << stats.violation_message;
  }
}

TEST(ThreadBackend, DivergentControlProgramIsCaught) {
  FunctionRegistry functions;
  ThreadConfig cfg;
  cfg.num_shards = 4;
  ThreadRuntime rt(functions, cfg);
  const DcrStats stats = rt.execute([](core::Context& ctx) {
    const FieldSpaceId fs = ctx.create_field_space();
    // Shard-dependent argument: a §3 violation the folded digests must flag.
    ctx.allocate_field(fs, 8 + ctx.shard_id().value, "diverge");
  });
  EXPECT_TRUE(stats.determinism_violation);
  EXPECT_FALSE(stats.completed);
  EXPECT_NE(stats.violation_message.find("determinism"), std::string::npos)
      << stats.violation_message;
}

TEST(ThreadBackend, ProfLedgerInvariantsReconcile) {
  // The dcr-prof ledger invariants must hold on wall-clock spans/counters
  // exactly as they do in virtual time (ISSUE satellite 6).
  FunctionRegistry functions;
  const FunctionId fn = functions.register_simple("t", us(1), 1.0);
  Philox4x32 rng(fuzz::seed_for_label("exec-ledger", 0), /*stream=*/11);
  const fuzz::LoopDcrProgram program = fuzz::generate_loop(rng, 6);
  ThreadConfig cfg;
  cfg.num_shards = 4;
  cfg.profile = true;
  ThreadRuntime rt(functions, cfg);
  const DcrStats stats =
      rt.execute(fuzz::materialize_loop(program, fn, /*use_trace=*/true));
  ASSERT_TRUE(stats.completed) << stats.abort_message;

  const prof::Profiler& prof = rt.profiler();
  EXPECT_EQ(prof.global().get(prof::GlobalCounter::FencesIssued) +
                prof.global().get(prof::GlobalCounter::FencesElided),
            prof.global().get(prof::GlobalCounter::FenceDecisions));
  for (std::uint32_t s = 0; s < 4; ++s) {
    const prof::Counters& c = prof.shard(s);
    EXPECT_EQ(c.get(prof::Counter::TemplateWindowHits) +
                  c.get(prof::Counter::TemplateWindowMisses),
              c.get(prof::Counter::WindowsClosed))
        << "shard " << s;
    EXPECT_GT(c.get(prof::Counter::WindowsClosed), 0u) << "shard " << s;
  }
}

// --------------------------------------------- differential fuzz sweeps

// 100 seeds x 2 shard counts = 200 fuzzed programs, faults off, sim vs
// threads (the ISSUE's headline acceptance gate).  Registered as the
// aggregate ExecFuzzSweep ctest entry under -L exec.
class ExecFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecFuzz, SimAndThreadsProduceIdenticalGraphs) {
  Philox4x32 rng(fuzz::seed_for_label("exec", GetParam()), /*stream=*/11);
  const fuzz::RandomDcrProgram program = fuzz::generate(rng, /*tiles=*/6);
  for (std::size_t shards : {2u, 4u}) {
    FunctionRegistry functions;
    const FunctionId fn = functions.register_simple("t", us(1), 1.0);
    const ApplicationMain app = fuzz::materialize(program, fn);
    const BackendRun sim_run = run_sim(app, functions, shards);
    const BackendRun thr_run = run_threads(app, functions, shards);
    expect_equivalent(sim_run, thr_run,
                      ("seed " + std::to_string(GetParam()) + " shards " +
                       std::to_string(shards))
                          .c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecFuzz, ::testing::Range<std::uint64_t>(0, 100));

// Smaller sweep with dependence templates AND the statics oracle armed on
// both backends: loop programs under begin/end_trace, so capture, shadow
// validation, and replay all run on real threads and must match the
// simulator's window accounting bit for bit.
class ExecLoopFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecLoopFuzz, TemplatesAndStaticsAgreeAcrossBackends) {
  Philox4x32 rng(fuzz::seed_for_label("exec-loop", GetParam()), /*stream=*/13);
  const fuzz::LoopDcrProgram program = fuzz::generate_loop(rng, /*tiles=*/6);
  DiffOptions opt;
  opt.statics_check = true;  // oracle: cross-check every static verdict
  for (std::size_t shards : {2u, 4u}) {
    FunctionRegistry functions;
    const FunctionId fn = functions.register_simple("t", us(1), 1.0);
    const ApplicationMain app =
        fuzz::materialize_loop(program, fn, /*use_trace=*/true);
    const BackendRun sim_run = run_sim(app, functions, shards, opt);
    const BackendRun thr_run = run_threads(app, functions, shards, opt);
    expect_equivalent(sim_run, thr_run,
                      ("loop seed " + std::to_string(GetParam()) + " shards " +
                       std::to_string(shards))
                          .c_str());
    EXPECT_GT(thr_run.stats.templates_captured, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecLoopFuzz, ::testing::Range<std::uint64_t>(0, 25));

// Elision ablation: with fence elision disabled the graphs must still agree
// (more fences, same dependences) — guards the fence transport specifically.
class ExecNoElideFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecNoElideFuzz, AllFencesBackendAgreement) {
  Philox4x32 rng(fuzz::seed_for_label("exec-noelide", GetParam()), /*stream=*/17);
  const fuzz::RandomDcrProgram program = fuzz::generate(rng, /*tiles=*/6);
  DiffOptions opt;
  opt.disable_fence_elision = true;
  FunctionRegistry functions;
  const FunctionId fn = functions.register_simple("t", us(1), 1.0);
  const ApplicationMain app = fuzz::materialize(program, fn);
  const BackendRun sim_run = run_sim(app, functions, 4, opt);
  const BackendRun thr_run = run_threads(app, functions, 4, opt);
  expect_equivalent(sim_run, thr_run,
                    ("noelide seed " + std::to_string(GetParam())).c_str());
  EXPECT_EQ(thr_run.stats.fences_elided, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecNoElideFuzz, ::testing::Range<std::uint64_t>(0, 10));

// ------------------------------------------------------------- flaky guard

// ISSUE satellite 4: thread-schedule nondeterminism is the enemy this suite
// exists to catch, and a single pass can get lucky.  One ctest entry repeats
// the 8-thread stencil equivalence 20 times so a schedule-dependent
// divergence has 20 chances to fire before a PR lands.
TEST(ExecFlakyGuard, StencilEquivalenceTwentyRuns) {
  FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  const apps::StencilConfig app_cfg{.cells_per_tile = 64, .tiles = 8, .steps = 3};
  const ApplicationMain app = apps::make_stencil_app(app_cfg, fns);

  const BackendRun sim_run = run_sim(app, functions, /*shards=*/8);
  ASSERT_TRUE(sim_run.stats.completed);

  for (int run = 0; run < 20; ++run) {
    const BackendRun thr_run = run_threads(app, functions, /*shards=*/8);
    expect_equivalent(sim_run, thr_run, ("stencil run " + std::to_string(run)).c_str());
    if (::testing::Test::HasFailure()) {
      FAIL() << "stencil equivalence diverged on repetition " << run;
    }
  }
}

}  // namespace
}  // namespace dcr::exec
