// Automatic repeated-trace identification (dcr/trace_id.hpp): property tests
// for the rolling CRC32C fingerprint, unit tests for the detect -> arm ->
// promote -> demote state machine (including the forced-collision stub and
// the hysteresis bound), promotion-determinism checks across shard counts and
// backends, a golden regression of the promoted-trace set on the
// phase-changing stencil, the SDC-heal/mid-capture interleaving regression,
// and the 200-seed differential fuzz sweep: auto detection on/off must
// realize spy-verified equivalent task graphs, with and without faults, on
// both the sim and threads backends.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/stencil.hpp"
#include "common/philox.hpp"
#include "dcr/runtime.hpp"
#include "dcr/trace_id.hpp"
#include "dcr_fuzz_programs.hpp"
#include "exec/thread_runtime.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "spy/trace.hpp"
#include "spy/verify.hpp"

#ifndef DCR_GOLDEN_DIR
#define DCR_GOLDEN_DIR "tests/golden"
#endif

namespace dcr::core {
namespace {

sim::MachineConfig cluster(std::size_t nodes) {
  return {.num_nodes = nodes,
          .compute_procs_per_node = 1,
          .network = {.alpha = us(1), .ns_per_byte = 0.1, .local_latency = ns(50)}};
}

// Synthetic call signatures: distinct 128-bit hashes per symbol, so a token
// stream can be scripted as a string ("abcabc...") with one symbol per call.
Hash128 sig_for(char symbol) {
  Hash128 h;
  h.lo = 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(symbol) + 1);
  h.hi = ~h.lo * 0x2545f4914f6cdd1dull;
  return h;
}

struct Step {
  TraceIdentifier::Action action;
  std::uint64_t pos;  // call index (0-based) that produced the action
};

// Feeds `stream` and returns every non-None action with its call index.
std::vector<Step> feed(TraceIdentifier& id, const std::string& stream,
                       std::uint64_t start = 0) {
  std::vector<Step> out;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    const TraceIdentifier::Result r = id.observe(sig_for(stream[i]), false);
    if (r.action != TraceIdentifier::Action::None) {
      out.push_back({r.action, start + i});
    }
  }
  return out;
}

std::string repeat(const std::string& unit, std::size_t times) {
  std::string s;
  for (std::size_t i = 0; i < times; ++i) s += unit;
  return s;
}

// ------------------------------------------------ rolling fingerprint math

// The rolling fingerprint after every observe() must equal the from-scratch
// CRC32C of the last min(pos, probe) tokens, for several probe lengths.
TEST(TraceIdFingerprint, SlideMatchesFromScratch) {
  for (const std::uint64_t probe : {2ull, 3ull, 8ull, 16ull}) {
    TraceIdConfig cfg;
    cfg.probe = probe;
    cfg.min_period = 1u << 20;  // never arm: this test is pure fp math
    TraceIdentifier id(cfg);
    Philox4x32 rng(fuzz::seed_for_label("trace_id", probe), /*stream=*/3);
    std::vector<std::uint32_t> tokens;
    for (int i = 0; i < 300; ++i) {
      Hash128 sig;
      sig.lo = rng.next_u64();
      sig.hi = rng.next_u64();
      tokens.push_back(TraceIdentifier::signature_token(sig));
      id.observe(sig, false);
      const std::size_t n = std::min<std::size_t>(tokens.size(), probe);
      const std::uint32_t want = TraceIdentifier::window_fingerprint(
          tokens.data() + (tokens.size() - n), n);
      ASSERT_EQ(id.fingerprint(), want)
          << "probe " << probe << " after " << tokens.size() << " tokens";
    }
  }
}

TEST(TraceIdFingerprint, TokenizerSeparatesSignatures) {
  // Distinct signatures must map to distinct tokens (for these inputs), and
  // the token must depend on both hash lanes.
  EXPECT_NE(TraceIdentifier::signature_token(sig_for('a')),
            TraceIdentifier::signature_token(sig_for('b')));
  Hash128 a = sig_for('a');
  Hash128 b = a;
  b.hi ^= 1;
  EXPECT_NE(TraceIdentifier::signature_token(a),
            TraceIdentifier::signature_token(b));
}

// ------------------------------------------------------ detector lifecycle

TraceIdConfig small_config() {
  TraceIdConfig cfg;
  cfg.enabled = true;
  cfg.min_period = 2;
  cfg.max_period = 64;
  cfg.probe = 4;
  cfg.promote_periods = 2;
  cfg.demote_strikes = 2;
  return cfg;
}

TEST(TraceIdDetector, PeriodicStreamPromotesOnceAndKeepsReplaying) {
  TraceIdentifier id(small_config());
  const std::vector<Step> steps = feed(id, repeat("abcd", 12));
  ASSERT_FALSE(steps.empty());
  // Exactly one Open (the promotion); every later boundary is CloseOpen.
  EXPECT_EQ(steps[0].action, TraceIdentifier::Action::Open);
  for (std::size_t i = 1; i < steps.size(); ++i) {
    EXPECT_EQ(steps[i].action, TraceIdentifier::Action::CloseOpen) << i;
    EXPECT_EQ(steps[i].pos - steps[i - 1].pos, 4u) << "period-4 boundaries";
  }
  EXPECT_EQ(id.period(), 4u);
  EXPECT_TRUE(id.window_open());
  const TraceIdentifier::Counters& c = id.counters();
  EXPECT_EQ(c.promotions, 1u);
  EXPECT_GE(c.detections, 1u);
  EXPECT_EQ(c.demotions, 0u);
  EXPECT_EQ(c.aborts, 0u);
  EXPECT_EQ(c.windows, steps.size());
  // Auto trace ids carry the high bit so they cannot collide with small
  // app-chosen TraceIds, and are never TraceId::invalid().
  EXPECT_NE(id.trace().value & 0x80000000u, 0u);
  EXPECT_TRUE(id.trace().valid());
  ASSERT_EQ(id.promotion_log().size(), 1u);
}

TEST(TraceIdDetector, DerivedIdIsStableAcrossRuns) {
  // Same repeating unit -> same TraceId, independent of how much aperiodic
  // prefix preceded it; different unit -> different id.
  auto promote_id = [](const std::string& prefix, const std::string& unit) {
    TraceIdentifier id(small_config());
    feed(id, prefix + repeat(unit, 12));
    EXPECT_EQ(id.counters().promotions, 1u) << prefix << "+" << unit;
    return id.trace().value;
  };
  const std::uint32_t base = promote_id("", "abcd");
  EXPECT_EQ(promote_id("xyzw", "abcd"), base);
  EXPECT_NE(promote_id("", "abce"), base);
}

TEST(TraceIdDetector, MinPeriodGateRejectsShortRepeats) {
  TraceIdConfig cfg = small_config();
  cfg.min_period = 5;
  TraceIdentifier id(cfg);
  feed(id, repeat("abcd", 16));  // period 4 < min_period
  EXPECT_EQ(id.counters().promotions, 0u);
  // ...but period 6 passes the gate.
  TraceIdentifier id6(cfg);
  feed(id6, repeat("abcdef", 12));
  EXPECT_EQ(id6.counters().promotions, 1u);
  EXPECT_EQ(id6.period(), 6u);
}

TEST(TraceIdDetector, SuppressDefersPromotionUntilReleased) {
  // With suppress held (an explicit app window is active), a fully stable
  // repeat must not open an auto window; releasing suppress promotes.
  TraceIdentifier id(small_config());
  const std::string stream = repeat("abcd", 12);
  for (char ch : stream) {
    const auto r = id.observe(sig_for(ch), /*suppress=*/true);
    EXPECT_EQ(r.action, TraceIdentifier::Action::None);
  }
  EXPECT_EQ(id.counters().promotions, 0u);
  bool opened = false;
  for (int i = 0; i < 16 && !opened; ++i) {
    opened = id.observe(sig_for("abcd"[i % 4]), false).action ==
             TraceIdentifier::Action::Open;
  }
  EXPECT_TRUE(opened);
  EXPECT_EQ(id.counters().promotions, 1u);
}

TEST(TraceIdDetector, InterruptClosesWindowWithoutStrike) {
  TraceIdentifier id(small_config());
  feed(id, repeat("abcd", 8));
  ASSERT_TRUE(id.window_open());
  const std::uint64_t aborts_before = id.counters().aborts;
  id.interrupt();
  EXPECT_FALSE(id.window_open());
  EXPECT_EQ(id.counters().aborts, aborts_before + 1);
  // The stream keeps repeating: the trace reopens (no demotion happened).
  const std::vector<Step> steps = feed(id, repeat("abcd", 4), 32);
  EXPECT_EQ(id.counters().demotions, 0u);
  bool reopened = false;
  for (const Step& s : steps) {
    reopened |= s.action == TraceIdentifier::Action::Open;
  }
  EXPECT_TRUE(reopened);
}

TEST(TraceIdDetector, ResetClearsStreamStateButKeepsCounters) {
  TraceIdentifier id(small_config());
  feed(id, repeat("abcd", 12));
  ASSERT_EQ(id.counters().promotions, 1u);
  id.reset();
  EXPECT_FALSE(id.window_open());
  EXPECT_EQ(id.period(), 0u);
  EXPECT_EQ(id.counters().promotions, 1u) << "counters survive recovery resets";
  // The replayed stream rebuilds the same trace deterministically.
  feed(id, repeat("abcd", 12));
  EXPECT_EQ(id.counters().promotions, 2u);
  ASSERT_EQ(id.promotion_log().size(), 2u);
  EXPECT_EQ(id.promotion_log()[0].second, id.promotion_log()[1].second);
}

// ---------------------------------------------- forced-collision stub path

TEST(TraceIdDetector, ForcedCollisionsAreVerifiedAndRejected) {
  // A 1-bit fingerprint table on a random (aperiodic) stream: nearly every
  // lookup hits, verification rejects each one, and nothing ever promotes.
  TraceIdConfig cfg = small_config();
  cfg.fp_mask_bits = 1;
  TraceIdentifier id(cfg);
  Philox4x32 rng(fuzz::seed_for_label("trace_id", 77), /*stream=*/7);
  for (int i = 0; i < 400; ++i) {
    Hash128 sig;
    sig.lo = rng.next_u64();
    sig.hi = rng.next_u64();
    const auto r = id.observe(sig, false);
    EXPECT_EQ(r.action, TraceIdentifier::Action::None);
  }
  EXPECT_GT(id.counters().collisions, 0u);
  EXPECT_EQ(id.counters().detections, 0u);
  EXPECT_EQ(id.counters().promotions, 0u);
}

TEST(TraceIdDetector, DetectionSurvivesCollisionsOnMaskedTable) {
  // With a 12-bit table the periodic stream still promotes the same trace at
  // the same index as the full-width table: collisions only cost verification
  // work, never correctness.
  TraceIdentifier full(small_config());
  TraceIdConfig masked_cfg = small_config();
  masked_cfg.fp_mask_bits = 12;
  TraceIdentifier masked(masked_cfg);
  const std::string stream = repeat("abcd", 12);
  feed(full, stream);
  feed(masked, stream);
  ASSERT_EQ(full.counters().promotions, 1u);
  EXPECT_EQ(masked.promotion_log(), full.promotion_log());
}

// -------------------------------------------------------- hysteresis bound

// ISSUE satellite: a mutated stream must demote within the documented bound
// of (demote_strikes + 1) * period calls after the last matching call.
TEST(TraceIdDetector, MutatedStreamDemotesWithinHysteresisBound) {
  for (const std::uint64_t strikes : {1ull, 2ull, 3ull}) {
    TraceIdConfig cfg = small_config();
    cfg.demote_strikes = strikes;
    TraceIdentifier id(cfg);
    feed(id, repeat("abcd", 12));
    ASSERT_EQ(id.counters().promotions, 1u) << "strikes " << strikes;
    ASSERT_TRUE(id.window_open());
    // Phase change: the stream stops repeating (no 'a'..'d' ever again).
    std::uint64_t calls = 0;
    Philox4x32 rng(fuzz::seed_for_label("trace_id", strikes), /*stream=*/9);
    while (id.counters().demotions == 0) {
      Hash128 sig;
      sig.lo = 0x1000 + rng.next_u64();
      sig.hi = rng.next_u64();
      id.observe(sig, false);
      calls++;
      ASSERT_LE(calls, (strikes + 1) * id.counters().promotions * 4 + 4)
          << "hysteresis bound blown at demote_strikes=" << strikes;
    }
    EXPECT_LE(calls, (strikes + 1) * 4) << "demote_strikes=" << strikes;
    EXPECT_FALSE(id.window_open());
    // Post-demotion the detector is scanning again: a fresh repeat re-promotes.
    feed(id, repeat("efgh", 12));
    EXPECT_EQ(id.counters().promotions, 2u) << "strikes " << strikes;
  }
}

TEST(TraceIdDetector, PhaseChangeToNewRepeatMigratesTrace) {
  // A -> B phase change: the old trace demotes, the new one promotes, and the
  // two derived ids differ.
  TraceIdentifier id(small_config());
  feed(id, repeat("abcd", 10));
  ASSERT_EQ(id.counters().promotions, 1u);
  const std::uint32_t first = id.trace().value;
  feed(id, repeat("wxyz", 12), 40);
  EXPECT_EQ(id.counters().demotions, 1u);
  EXPECT_EQ(id.counters().promotions, 2u);
  EXPECT_NE(id.trace().value, first);
}

// ------------------------------------------- end-to-end runs (sim backend)

struct AutoRun {
  DcrStats stats;
  spy::Trace trace;
  rt::TaskGraph graph;
  std::vector<std::vector<std::pair<std::uint64_t, std::uint32_t>>> logs;
};

TraceIdConfig stencil_auto_config() {
  // The dcr-scope/bench tuning: period-3/4 loop bodies, fast promotion.
  TraceIdConfig cfg;
  cfg.enabled = true;
  cfg.min_period = 2;
  cfg.probe = 6;
  cfg.promote_periods = 1;
  return cfg;
}

AutoRun run_auto_sim(const ApplicationMain& app, FunctionRegistry& functions,
                     std::size_t shards, bool auto_on,
                     sim::FaultConfig fcfg = {}, bool profile = false) {
  sim::Machine machine(cluster(shards));
  sim::FaultPlan plan(fcfg);
  if (!fcfg.crashes.empty() || fcfg.sdc.rate > 0.0) machine.install_faults(plan);
  DcrConfig cfg;
  cfg.record_trace = true;
  cfg.record_task_graph = true;
  cfg.profile = profile;
  if (auto_on) cfg.auto_trace = stencil_auto_config();
  DcrRuntime rt(machine, functions, cfg);
  AutoRun out;
  out.stats = rt.execute(app);
  out.trace = *rt.trace();
  out.graph = rt.realized_graph().transitive_closure();
  for (std::uint32_t s = 0; s < shards; ++s) {
    out.logs.push_back(rt.shard_auto_tracer(ShardId(s)).promotion_log());
  }
  return out;
}

ApplicationMain phase_stencil(FunctionRegistry& functions, std::size_t tiles,
                              std::size_t steps, std::size_t phase_every,
                              bool use_trace = false) {
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  apps::StencilConfig cfg{.cells_per_tile = 32, .tiles = tiles, .steps = steps};
  cfg.phase_every = phase_every;
  cfg.use_trace = use_trace;
  return apps::make_stencil_app(cfg, fns);
}

void expect_clean(const AutoRun& run, const std::string& what) {
  ASSERT_TRUE(run.stats.completed) << what << ": " << run.stats.abort_message;
  EXPECT_FALSE(run.stats.determinism_violation) << what;
  const spy::VerifyReport report = spy::verify(run.trace);
  EXPECT_TRUE(report.ok()) << what << ": " << report.summary()
                           << (report.findings.empty()
                                   ? ""
                                   : "\n  " + report.findings[0].message);
}

// The headline end-to-end property on the phase-changing stencil: detection
// finds the per-phase loops, replays them, and the realized partial order is
// untouched.
TEST(TraceIdEndToEnd, PhaseChangingStencilReplaysWithIdenticalGraph) {
  FunctionRegistry f_on, f_off;
  const ApplicationMain on_app = phase_stencil(f_on, 8, 32, 8);
  const ApplicationMain off_app = phase_stencil(f_off, 8, 32, 8);
  const AutoRun on = run_auto_sim(on_app, f_on, 4, /*auto_on=*/true);
  const AutoRun off = run_auto_sim(off_app, f_off, 4, /*auto_on=*/false);
  expect_clean(on, "auto on");
  expect_clean(off, "auto off");
  EXPECT_TRUE(on.graph.same_partial_order(off.graph));
  EXPECT_EQ(on.stats.point_tasks_launched, off.stats.point_tasks_launched);
  // The detector actually did something: promotions happened, windows
  // replayed, and the off run touched none of the machinery.
  EXPECT_GT(on.stats.auto_trace_promotions, 0u);
  EXPECT_GT(on.stats.template_replays, 0u);
  EXPECT_GT(on.stats.traced_ops, 0u);
  EXPECT_EQ(off.stats.auto_trace_promotions, 0u);
  EXPECT_EQ(off.stats.template_replays, 0u);
}

// Promotion determinism (ISSUE satellite): all shards promote the same trace
// at the same launch index, at shard counts 1, 8, and 64 — the control
// stream is identical (tiles fixed at 64), so the logs must be verbatim
// equal across every shard of every run.
TEST(TraceIdEndToEnd, PromotionDeterminismAcrossShardCounts) {
  std::vector<std::pair<std::uint64_t, std::uint32_t>> reference;
  bool have_reference = false;
  for (const std::size_t shards : {1u, 8u, 64u}) {
    FunctionRegistry functions;
    // tiles == 64 keeps the control stream identical at every shard count;
    // 12 steps (A, B, A at phase_every=4) is the shortest run that covers
    // promotion in both phases plus a re-entry, keeping the 64-shard sim
    // affordable.
    const ApplicationMain app = phase_stencil(functions, 64, 12, 4);
    const AutoRun run = run_auto_sim(app, functions, shards, /*auto_on=*/true);
    ASSERT_TRUE(run.stats.completed) << shards << " shards";
    ASSERT_EQ(run.logs.size(), shards);
    for (std::size_t s = 0; s < shards; ++s) {
      EXPECT_EQ(run.logs[s], run.logs[0])
          << "shard " << s << " of " << shards << " diverged";
    }
    ASSERT_FALSE(run.logs[0].empty()) << shards << " shards: nothing promoted";
    if (!have_reference) {
      reference = run.logs[0];
      have_reference = true;
    } else {
      EXPECT_EQ(run.logs[0], reference)
          << shards << " shards promoted differently than 1 shard";
    }
  }
}

// Same property on the real-threads backend, cross-checked against the sim.
TEST(TraceIdEndToEnd, PromotionDeterminismOnThreadsBackend) {
  FunctionRegistry sim_fns;
  const ApplicationMain sim_app = phase_stencil(sim_fns, 16, 24, 6);
  const AutoRun sim_run = run_auto_sim(sim_app, sim_fns, 8, /*auto_on=*/true);
  ASSERT_TRUE(sim_run.stats.completed);
  ASSERT_FALSE(sim_run.logs[0].empty());

  FunctionRegistry thr_fns;
  const ApplicationMain thr_app = phase_stencil(thr_fns, 16, 24, 6);
  exec::ThreadConfig cfg;
  cfg.num_shards = 8;
  cfg.record_trace = true;
  cfg.auto_trace = stencil_auto_config();
  exec::ThreadRuntime rt(thr_fns, cfg);
  const DcrStats stats = rt.execute(thr_app);
  ASSERT_TRUE(stats.completed) << stats.abort_message;
  EXPECT_EQ(stats.auto_trace_promotions, sim_run.stats.auto_trace_promotions);
  EXPECT_EQ(stats.template_replays, sim_run.stats.template_replays);
  for (std::uint32_t s = 0; s < 8; ++s) {
    EXPECT_EQ(rt.shard_auto_tracer(ShardId(s)).promotion_log(), sim_run.logs[0])
        << "threads shard " << s;
  }
  std::string why;
  EXPECT_TRUE(spy::graph_equivalent(sim_run.trace, *rt.trace(), &why)) << why;
}

// Explicit windows win: with use_trace AND auto detection on, the app's
// begin/end_trace keeps its windows and the auto tracer only fills the gaps —
// the graph still matches the fully untraced reference.
TEST(TraceIdEndToEnd, ExplicitWindowsTakePrecedence) {
  FunctionRegistry f_both, f_off;
  const ApplicationMain both_app = phase_stencil(f_both, 8, 24, 6, /*use_trace=*/true);
  const ApplicationMain off_app = phase_stencil(f_off, 8, 24, 6);
  const AutoRun both = run_auto_sim(both_app, f_both, 4, /*auto_on=*/true);
  const AutoRun off = run_auto_sim(off_app, f_off, 4, /*auto_on=*/false);
  expect_clean(both, "explicit + auto");
  expect_clean(off, "untraced");
  EXPECT_TRUE(both.graph.same_partial_order(off.graph));
  EXPECT_GT(both.stats.template_replays, 0u);
}

// --------------------------------------------------- SDC heal interleaving

// ISSUE satellite: a template invalidated by SDC healing mid-capture must not
// leave a half-recorded trace behind.  The heal path aborts open windows (auto
// and explicit) when it bumps the template epoch; with the residual chain
// under replication and corruption injected at a healthy rate, auto windows
// are routinely open at heal time.  The realized graph must match the
// fault-free unreplicated run, and the healed run must still reach replay.
TEST(TraceIdSdc, HealMidCaptureCannotPromoteHalfRecordedTrace) {
  auto residual_app = [](FunctionRegistry& functions) {
    const auto fns = apps::register_stencil_functions(functions, 1.0);
    apps::StencilConfig cfg{.cells_per_tile = 64, .tiles = 16, .steps = 8};
    cfg.residual_every = 1;
    cfg.phase_every = 3;
    return apps::make_stencil_app(cfg, fns);
  };
  FunctionRegistry f_ref;
  const ApplicationMain ref_app = residual_app(f_ref);
  const AutoRun ref = run_auto_sim(ref_app, f_ref, 8, /*auto_on=*/false);
  expect_clean(ref, "reference");

  std::uint64_t healed_total = 0, aborted_total = 0;
  for (const std::uint64_t seed : {3ull, 5ull, 11ull}) {
    FunctionRegistry functions;
    const ApplicationMain app = residual_app(functions);
    sim::Machine machine(cluster(8));
    sim::FaultConfig fcfg;
    fcfg.seed = seed;
    fcfg.sdc.rate = 0.15;
    sim::FaultPlan plan(fcfg);
    machine.install_faults(plan);
    DcrConfig cfg;
    cfg.record_trace = true;
    cfg.record_task_graph = true;
    cfg.auto_trace = stencil_auto_config();
    cfg.sdc_replication = true;
    DcrRuntime rt(machine, functions, cfg);
    const DcrStats stats = rt.execute(app);
    ASSERT_TRUE(stats.completed) << "seed " << seed << ": " << stats.abort_message;
    EXPECT_FALSE(stats.determinism_violation) << "seed " << seed;
    healed_total += stats.sdc_corruptions_healed;
    aborted_total += stats.auto_trace_aborts;
    // The corrupt-epoch invalidation must not poison later replays: whatever
    // was promoted after healing realizes the reference partial order.
    std::string why;
    EXPECT_TRUE(spy::graph_equivalent(ref.trace, *rt.trace(), &why))
        << "seed " << seed << ": " << why;
    EXPECT_GT(stats.auto_trace_promotions, 0u) << "seed " << seed;
  }
  EXPECT_GT(healed_total, 0u) << "SDC rate too low to exercise the heal path";
}

// Crash recovery: the detector state is rebuilt deterministically from the
// replayed stream, survivors' auto windows abort at the epoch bump, and the
// realized graph still matches the fault-free auto-off reference.
TEST(TraceIdRecovery, CrashMidRunRebuildsDetectorDeterministically) {
  FunctionRegistry f_ref;
  const auto ref_fns = apps::register_stencil_functions(f_ref, 1.0);
  // Residual reductions keep the control program in lockstep with execution,
  // so a mid-run crash lands while windows are still being opened.  Every
  // step carries a residual so the per-step period repeats within a phase
  // (with a sparser residual the repeating unit spans two steps and a 4-step
  // phase ends before the detector can confirm it).
  apps::StencilConfig scfg{.cells_per_tile = 64, .tiles = 8, .steps = 16};
  scfg.residual_every = 1;
  scfg.phase_every = 4;
  const ApplicationMain ref_app = apps::make_stencil_app(scfg, ref_fns);
  const AutoRun ref = run_auto_sim(ref_app, f_ref, 4, /*auto_on=*/false);
  expect_clean(ref, "fault-free reference");
  FunctionRegistry f_probe;
  const auto probe_fns = apps::register_stencil_functions(f_probe, 1.0);
  const AutoRun probe =
      run_auto_sim(apps::make_stencil_app(scfg, probe_fns), f_probe, 4, true);
  ASSERT_TRUE(probe.stats.completed);
  ASSERT_GT(probe.stats.auto_trace_promotions, 0u);

  sim::FaultConfig fcfg;
  fcfg.seed = fuzz::seed_for_label("trace_id", 500);
  fcfg.crashes.push_back({NodeId(2), probe.stats.makespan * 3 / 5});
  FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  const AutoRun run = run_auto_sim(apps::make_stencil_app(scfg, fns), functions,
                                   4, /*auto_on=*/true, fcfg);
  ASSERT_TRUE(run.stats.completed) << run.stats.abort_message;
  EXPECT_FALSE(run.stats.determinism_violation);
  ASSERT_EQ(run.stats.failures.size(), 1u);
  EXPECT_TRUE(run.stats.failures[0].recovered);
  EXPECT_GT(run.stats.auto_trace_promotions, 0u);
  EXPECT_TRUE(ref.graph.same_partial_order(run.graph));
}

// ------------------------------------------------- differential fuzz sweep

// 200 fuzzed loop programs with NO explicit windows: auto detection on/off
// must realize the same partial order and pass the offline verifier.  This is
// the `-L trace_id` fuzz entry check-hardened runs under sanitizers.
class TraceIdFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceIdFuzz, AutoOnOffGraphsMatch) {
  const std::uint64_t seed = GetParam();
  Philox4x32 rng(fuzz::seed_for_label("trace_id", seed), /*stream=*/21);
  fuzz::LoopDcrProgram program = fuzz::generate_loop(rng, /*tiles=*/6);
  program.iterations += 6;  // enough occurrences for detection to engage
  FunctionRegistry functions;
  const FunctionId fn = functions.register_simple("t", us(1), 1.0);
  const ApplicationMain app = fuzz::materialize_loop(program, fn, /*use_trace=*/false);
  const AutoRun on = run_auto_sim(app, functions, 4, /*auto_on=*/true);
  const AutoRun off = run_auto_sim(app, functions, 4, /*auto_on=*/false);
  expect_clean(on, "auto on, seed " + std::to_string(seed));
  expect_clean(off, "auto off, seed " + std::to_string(seed));
  EXPECT_TRUE(on.graph.same_partial_order(off.graph)) << "seed " << seed;
  EXPECT_EQ(on.stats.point_tasks_launched, off.stats.point_tasks_launched)
      << "seed " << seed;
  EXPECT_EQ(off.stats.auto_trace_promotions, 0u);
  for (std::size_t s = 1; s < on.logs.size(); ++s) {
    EXPECT_EQ(on.logs[s], on.logs[0]) << "seed " << seed << " shard " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceIdFuzz, ::testing::Range<std::uint64_t>(0, 200));

// Faults + recovery variant: a crash mid-run with auto detection on must
// still realize the fault-free auto-off graph (sim backend; the threads
// backend has no fault injection by design).
class TraceIdFaultFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceIdFaultFuzz, CrashRecoveryPreservesAutoOnOffEquivalence) {
  const std::uint64_t seed = GetParam();
  Philox4x32 rng(fuzz::seed_for_label("trace_id-faults", seed), /*stream=*/23);
  fuzz::LoopDcrProgram program = fuzz::generate_loop(rng, /*tiles=*/6);
  program.iterations += 8;
  FunctionRegistry functions;
  const FunctionId fn = functions.register_simple("t", us(3), 1.0);
  // Fences per iteration keep control in lockstep so the crash is mid-stream.
  const ApplicationMain app = [&program, fn](Context& ctx) {
    const std::vector<fuzz::FuzzTreeState> trees = fuzz::build_trees(ctx, program.body);
    for (std::size_t i = 0; i < program.iterations; ++i) {
      fuzz::emit_ops(ctx, program.body, trees, fn);
      ctx.execution_fence();
    }
  };
  const AutoRun off = run_auto_sim(app, functions, 4, /*auto_on=*/false);
  expect_clean(off, "fault-free reference, seed " + std::to_string(seed));

  sim::FaultConfig fcfg;
  fcfg.seed = fuzz::seed_for_label("trace_id-faults", seed);
  const std::uint64_t frac = 2 + seed % 6;  // crash at 2/8 .. 7/8 of makespan
  fcfg.crashes.push_back(
      {NodeId(1 + seed % 3), off.stats.makespan * frac / 8});
  const AutoRun on = run_auto_sim(app, functions, 4, /*auto_on=*/true, fcfg);
  ASSERT_TRUE(on.stats.completed)
      << "seed " << seed << ": " << on.stats.abort_message;
  EXPECT_FALSE(on.stats.determinism_violation) << "seed " << seed;
  EXPECT_TRUE(on.graph.same_partial_order(off.graph)) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceIdFaultFuzz,
                         ::testing::Range<std::uint64_t>(0, 20));

// Threads-backend variant: auto on/off spy-equivalent graphs on real threads,
// and the threads auto run agrees with the sim auto run call-for-call.
class TraceIdThreadsFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceIdThreadsFuzz, AutoOnOffGraphsMatchOnThreads) {
  const std::uint64_t seed = GetParam();
  Philox4x32 rng(fuzz::seed_for_label("trace_id-threads", seed), /*stream=*/25);
  fuzz::LoopDcrProgram program = fuzz::generate_loop(rng, /*tiles=*/6);
  program.iterations += 6;
  FunctionRegistry functions;
  const FunctionId fn = functions.register_simple("t", us(1), 1.0);
  const ApplicationMain app = fuzz::materialize_loop(program, fn, /*use_trace=*/false);

  auto run_threads = [&](bool auto_on) {
    exec::ThreadConfig cfg;
    cfg.num_shards = 4;
    cfg.record_trace = true;
    if (auto_on) cfg.auto_trace = stencil_auto_config();
    exec::ThreadRuntime rt(functions, cfg);
    std::pair<DcrStats, spy::Trace> out;
    out.first = rt.execute(app);
    out.second = *rt.trace();
    return out;
  };
  const auto on = run_threads(true);
  const auto off = run_threads(false);
  ASSERT_TRUE(on.first.completed) << "seed " << seed << ": " << on.first.abort_message;
  ASSERT_TRUE(off.first.completed) << "seed " << seed;
  std::string why;
  EXPECT_TRUE(spy::graph_equivalent(on.second, off.second, &why))
      << "seed " << seed << ": " << why;
  const spy::VerifyReport report = spy::verify(on.second);
  EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.summary();
  // Cross-backend: the sim's auto run must match the threads auto run.
  const AutoRun sim_on = run_auto_sim(app, functions, 4, /*auto_on=*/true);
  EXPECT_EQ(sim_on.stats.auto_trace_promotions, on.first.auto_trace_promotions)
      << "seed " << seed;
  EXPECT_EQ(sim_on.stats.template_replays, on.first.template_replays)
      << "seed " << seed;
  EXPECT_TRUE(spy::graph_equivalent(sim_on.trace, on.second, &why))
      << "seed " << seed << ": " << why;
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceIdThreadsFuzz,
                         ::testing::Range<std::uint64_t>(0, 25));

// ------------------------------------------------------- golden regression

std::string golden_path() {
  return std::string(DCR_GOLDEN_DIR) + "/trace_id.txt";
}

bool update_mode() {
  const char* e = std::getenv("DCR_UPDATE_GOLDEN");
  return e != nullptr && std::string(e) != "" && std::string(e) != "0";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return in ? os.str() : std::string();
}

// The promoted-trace set and detector/hit counters of the phase-changing
// stencil, committed as tests/golden/trace_id.txt.  Promotion indices and
// derived ids are deterministic (shard-invariant), so one snapshot covers
// every shard.  Regenerate after an intentional detector change with
// DCR_UPDATE_GOLDEN=1.
TEST(TraceIdGolden, PhaseChangingStencilPromotionsAndHitCounters) {
  FunctionRegistry functions;
  const ApplicationMain app = phase_stencil(functions, 8, 32, 8);
  const AutoRun run =
      run_auto_sim(app, functions, 4, /*auto_on=*/true, {}, /*profile=*/true);
  ASSERT_TRUE(run.stats.completed);
  for (std::size_t s = 1; s < run.logs.size(); ++s) {
    ASSERT_EQ(run.logs[s], run.logs[0]) << "shard " << s;
  }

  std::ostringstream os;
  os << "# auto trace identification: phase-changing stencil, 4 shards,\n"
     << "# tiles=8 steps=32 phase_every=8; min_period=2 probe=6 promote=1\n";
  for (const auto& [idx, id] : run.logs[0]) {
    os << "promote call=" << idx << " trace=0x" << std::hex << id << std::dec
       << "\n";
  }
  os << "detections=" << run.stats.auto_trace_detections << "\n"
     << "promotions=" << run.stats.auto_trace_promotions << "\n"
     << "demotions=" << run.stats.auto_trace_demotions << "\n"
     << "windows=" << run.stats.auto_trace_windows << "\n"
     << "aborts=" << run.stats.auto_trace_aborts << "\n"
     << "collisions=" << run.stats.auto_trace_collisions << "\n"
     << "replays=" << run.stats.template_replays << "\n"
     << "traced_ops=" << run.stats.traced_ops << "\n";
  const std::string actual = os.str();

  const std::string path = golden_path();
  if (update_mode()) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    std::printf("[golden] regenerated %s\n", path.c_str());
  }
  const std::string golden = read_file(path);
  ASSERT_FALSE(golden.empty()) << "missing golden file " << path
                               << "; generate with DCR_UPDATE_GOLDEN=1";
  EXPECT_EQ(golden, actual)
      << "promoted-trace set diverged (intentional detector change? "
         "regenerate with DCR_UPDATE_GOLDEN=1)";
}

}  // namespace
}  // namespace dcr::core
