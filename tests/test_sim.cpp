// Unit tests for the discrete-event simulator substrate: events, the
// calendar, processes, the network model, collectives, and processors.
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <vector>

#include "sim/collective.hpp"
#include "sim/machine.hpp"
#include "sim/network.hpp"
#include "sim/processor.hpp"
#include "sim/simulator.hpp"

namespace dcr::sim {
namespace {

// -------------------------------------------------------------------- events

TEST(Event, NoEventIsTriggered) {
  EXPECT_TRUE(Event::no_event().has_triggered());
}

TEST(Event, UserEventTriggerRunsWaiters) {
  UserEvent e;
  int fired = 0;
  e.on_trigger([&] { ++fired; });
  EXPECT_FALSE(e.has_triggered());
  e.trigger(5);
  EXPECT_TRUE(e.has_triggered());
  EXPECT_EQ(e.trigger_time(), 5u);
  EXPECT_EQ(fired, 1);
  // Late waiter runs immediately.
  e.on_trigger([&] { ++fired; });
  EXPECT_EQ(fired, 2);
}

TEST(Event, MergeWaitsForAll) {
  UserEvent a, b;
  Event m = merge_events({a, b});
  EXPECT_FALSE(m.has_triggered());
  a.trigger(3);
  EXPECT_FALSE(m.has_triggered());
  b.trigger(9);
  EXPECT_TRUE(m.has_triggered());
  EXPECT_EQ(m.trigger_time(), 9u);
}

TEST(Event, MergeOfTriggeredEventsKeepsLatestTime) {
  UserEvent a, b;
  a.trigger(3);
  b.trigger(7);
  Event m = merge_events({a, b});
  EXPECT_TRUE(m.has_triggered());
  EXPECT_EQ(m.trigger_time(), 7u);
}

TEST(Event, MergeEmptyIsNoEvent) {
  EXPECT_TRUE(merge_events({}).has_triggered());
}

// ----------------------------------------------------------------- simulator

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 30u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesBreakByScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule(10, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NestedSchedulingAdvancesClock) {
  Simulator sim;
  SimTime seen = 0;
  sim.schedule(5, [&] {
    EXPECT_EQ(sim.now(), 5u);
    sim.schedule(7, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 12u);
}

TEST(Simulator, TimerEventTriggersAtDeadline) {
  Simulator sim;
  Event t = sim.timer(42);
  sim.run();
  EXPECT_TRUE(t.has_triggered());
  EXPECT_EQ(t.trigger_time(), 42u);
}

// ----------------------------------------------------------------- processes

TEST(Process, DelayAdvancesVirtualTime) {
  Simulator sim;
  std::vector<SimTime> stamps;
  sim.spawn("p", [&](ProcessContext& ctx) {
    stamps.push_back(ctx.now());
    ctx.delay(100);
    stamps.push_back(ctx.now());
    ctx.delay(50);
    stamps.push_back(ctx.now());
  });
  sim.run();
  EXPECT_EQ(stamps, (std::vector<SimTime>{0, 100, 150}));
  EXPECT_EQ(sim.live_processes(), 0u);
}

TEST(Process, WaitOnEvent) {
  Simulator sim;
  UserEvent gate;
  SimTime woke = 0;
  sim.spawn("waiter", [&](ProcessContext& ctx) {
    ctx.wait(gate);
    woke = ctx.now();
  });
  sim.schedule(77, [&] { gate.trigger(sim.now()); });
  sim.run();
  EXPECT_EQ(woke, 77u);
}

TEST(Process, WaitOnTriggeredEventReturnsImmediately) {
  Simulator sim;
  sim.spawn("p", [&](ProcessContext& ctx) {
    ctx.wait(Event::no_event());
    EXPECT_EQ(ctx.now(), 0u);
  });
  sim.run();
}

TEST(Process, TwoProcessesInterleaveDeterministically) {
  Simulator sim;
  std::vector<std::string> log;
  sim.spawn("a", [&](ProcessContext& ctx) {
    for (int i = 0; i < 3; ++i) {
      log.push_back("a" + std::to_string(i));
      ctx.delay(10);
    }
  });
  sim.spawn("b", [&](ProcessContext& ctx) {
    ctx.delay(5);
    for (int i = 0; i < 3; ++i) {
      log.push_back("b" + std::to_string(i));
      ctx.delay(10);
    }
  });
  sim.run();
  EXPECT_EQ(log, (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2", "b2"}));
}

TEST(Process, CompletionEvent) {
  Simulator sim;
  auto& p = sim.spawn("p", [&](ProcessContext& ctx) { ctx.delay(30); });
  SimTime done_at = kTimeNever;
  p.completion().on_trigger([&] { done_at = sim.now(); });
  sim.run();
  EXPECT_EQ(done_at, 30u);
  EXPECT_TRUE(p.finished());
}

TEST(Process, BlockedProcessKilledCleanlyOnTeardown) {
  // A process stuck on a never-triggered event must not hang destruction,
  // and its stack must unwind (destructor observed).
  bool unwound = false;
  {
    Simulator sim;
    UserEvent never;
    sim.spawn("stuck", [&](ProcessContext& ctx) {
      struct Sentinel {
        bool* flag;
        ~Sentinel() { *flag = true; }
      } s{&unwound};
      ctx.wait(never);
    });
    sim.run();
    EXPECT_EQ(sim.live_processes(), 1u);
  }
  EXPECT_TRUE(unwound);
}

TEST(Process, WaitAtLeastChargesMinimum) {
  Simulator sim;
  UserEvent fast;
  fast.trigger(0);
  sim.spawn("p", [&](ProcessContext& ctx) {
    ctx.wait_at_least(fast, 25);
    EXPECT_EQ(ctx.now(), 25u);
  });
  sim.run();
}

// ------------------------------------------------------------------- network

TEST(Network, LatencyBandwidthModel) {
  Simulator sim;
  Network net(sim, 2, {.alpha = us(1), .ns_per_byte = 1.0, .local_latency = ns(50)});
  Event e = net.send(NodeId(0), NodeId(1), 1000);
  sim.run();
  // serialization 1000ns + alpha 1000ns
  EXPECT_EQ(e.trigger_time(), us(2));
}

TEST(Network, LocalSendIsCheap) {
  Simulator sim;
  Network net(sim, 2, {.alpha = us(1), .ns_per_byte = 1.0, .local_latency = ns(50)});
  Event e = net.send(NodeId(1), NodeId(1), 1 << 20);
  sim.run();
  EXPECT_EQ(e.trigger_time(), ns(50));
  EXPECT_EQ(net.stats().local_messages, 1u);
  EXPECT_EQ(net.stats().messages, 0u);
}

TEST(Network, EgressSerializesBackToBackSends) {
  Simulator sim;
  Network net(sim, 3, {.alpha = us(1), .ns_per_byte = 1.0, .local_latency = ns(50)});
  Event e1 = net.send(NodeId(0), NodeId(1), 1000);
  Event e2 = net.send(NodeId(0), NodeId(2), 1000);  // queued behind e1 on egress
  sim.run();
  EXPECT_EQ(e1.trigger_time(), us(2));
  EXPECT_EQ(e2.trigger_time(), us(3));  // waits 1000ns for the NIC
}

TEST(Network, IngressContention) {
  Simulator sim;
  Network net(sim, 3, {.alpha = us(1), .ns_per_byte = 1.0, .local_latency = ns(50)});
  Event e1 = net.send(NodeId(0), NodeId(2), 1000);
  Event e2 = net.send(NodeId(1), NodeId(2), 1000);
  sim.run();
  EXPECT_EQ(e1.trigger_time(), us(2));
  // Second message must serialize through node 2's ingress.
  EXPECT_EQ(e2.trigger_time(), us(3));
}

TEST(Network, StatsAccumulate) {
  Simulator sim;
  Network net(sim, 2, {});
  net.send(NodeId(0), NodeId(1), 100);
  net.send(NodeId(1), NodeId(0), 200);
  sim.run();
  EXPECT_EQ(net.stats().messages, 2u);
  EXPECT_EQ(net.stats().bytes, 300u);
}

TEST(Network, CopyWaitsForPrecondition) {
  Simulator sim;
  Network net(sim, 2, {.alpha = us(1), .ns_per_byte = 0.0, .local_latency = ns(50)});
  UserEvent pre;
  Event done = net.copy(NodeId(0), NodeId(1), 64, pre);
  sim.schedule(ms(1), [&] { pre.trigger(sim.now()); });
  sim.run();
  EXPECT_EQ(done.trigger_time(), ms(1) + us(1));
}

// ---------------------------------------------------------------- collective

TEST(Collective, AllReduceCombinesAllValues) {
  Simulator sim;
  Network net(sim, 4, {.alpha = us(1), .ns_per_byte = 0.0, .local_latency = ns(50)});
  std::vector<NodeId> nodes{NodeId(0), NodeId(1), NodeId(2), NodeId(3)};
  Collective<int> coll(sim, net, nodes, CollectiveKind::AllReduce, 8,
                       [](int a, int b) { return a + b; });
  std::vector<Event> done;
  for (std::size_t r = 0; r < 4; ++r) done.push_back(coll.arrive(r, int(1 << r)));
  sim.run();
  for (auto& e : done) EXPECT_TRUE(e.has_triggered());
  EXPECT_EQ(coll.result(), 0b1111);
}

TEST(Collective, AllReduceLatencyIsLogarithmic) {
  // With zero bandwidth cost and alpha=1us, an N-rank binomial-tree
  // reduce+broadcast completes in <= 2*ceil(log2 N) * alpha.
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u, 64u}) {
    Simulator sim;
    Network net(sim, n, {.alpha = us(1), .ns_per_byte = 0.0, .local_latency = ns(50)});
    std::vector<NodeId> nodes;
    for (std::size_t i = 0; i < n; ++i) nodes.push_back(NodeId(static_cast<std::uint32_t>(i)));
    Collective<int> coll(sim, net, nodes, CollectiveKind::AllReduce, 0,
                         [](int a, int b) { return a + b; });
    Event last;
    for (std::size_t r = 0; r < n; ++r) last = coll.arrive(r, 1);
    const SimTime end = sim.run();
    std::size_t log2n = 0;
    while ((1u << log2n) < n) ++log2n;
    EXPECT_LE(end, 2 * log2n * us(1) + us(1)) << "n=" << n;
    EXPECT_EQ(coll.result(), static_cast<int>(n));
  }
}

TEST(Collective, StraggledArrivalGatesCompletion) {
  Simulator sim;
  Network net(sim, 2, {.alpha = us(1), .ns_per_byte = 0.0, .local_latency = ns(50)});
  Collective<int> coll(sim, net, {NodeId(0), NodeId(1)}, CollectiveKind::AllReduce, 4,
                       [](int a, int b) { return a + b; });
  Event e0 = coll.arrive(0, 10);
  sim.schedule(ms(5), [&] { coll.arrive(1, 20); });
  sim.run();
  EXPECT_GE(e0.trigger_time(), ms(5));
  EXPECT_EQ(coll.result(), 30);
}

TEST(Collective, BroadcastDeliversRootValueWithoutWaiting) {
  Simulator sim;
  Network net(sim, 4, {.alpha = us(1), .ns_per_byte = 0.0, .local_latency = ns(50)});
  std::vector<NodeId> nodes{NodeId(0), NodeId(1), NodeId(2), NodeId(3)};
  Collective<int> coll(sim, net, nodes, CollectiveKind::Broadcast, 4,
                       [](int a, int) { return a; });
  Event e3 = coll.arrive(3, 0);   // non-root arrives first with dummy value
  Event e0 = coll.arrive(0, 99);
  sim.run();
  EXPECT_TRUE(e0.has_triggered());
  EXPECT_TRUE(e3.has_triggered());
  EXPECT_EQ(coll.result(), 99);
}

TEST(Collective, AllGatherConcatenates) {
  Simulator sim;
  Network net(sim, 3, {.alpha = us(1), .ns_per_byte = 0.0, .local_latency = ns(50)});
  std::vector<NodeId> nodes{NodeId(0), NodeId(1), NodeId(2)};
  using Vec = std::vector<int>;
  Collective<Vec> coll(sim, net, nodes, CollectiveKind::AllGather, 4,
                       [](Vec a, Vec b) {
                         a.insert(a.end(), b.begin(), b.end());
                         return a;
                       });
  for (std::size_t r = 0; r < 3; ++r) coll.arrive(r, Vec{static_cast<int>(r)});
  sim.run();
  Vec got = coll.result();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (Vec{0, 1, 2}));
}

TEST(FenceCollective, ActsAsBarrier) {
  Simulator sim;
  Network net(sim, 4, {.alpha = us(1), .ns_per_byte = 0.0, .local_latency = ns(50)});
  std::vector<NodeId> nodes{NodeId(0), NodeId(1), NodeId(2), NodeId(3)};
  FenceCollective fence(sim, net, nodes);
  std::vector<Event> done(4);
  done[0] = fence.arrive(0);
  done[1] = fence.arrive(1);
  done[2] = fence.arrive(2);
  sim.schedule(ms(2), [&] { done[3] = fence.arrive(3); });
  sim.run();
  for (auto& e : done) {
    EXPECT_TRUE(e.has_triggered());
    EXPECT_GE(e.trigger_time(), ms(2));  // nobody passes before the straggler
  }
}

// ----------------------------------------------------------------- processor

TEST(Processor, RunsTasksFifo) {
  Simulator sim;
  Processor proc(sim, ProcId(0), NodeId(0), ProcKind::Compute);
  Event e1 = proc.enqueue(100);
  Event e2 = proc.enqueue(50);
  sim.run();
  EXPECT_EQ(e1.trigger_time(), 100u);
  EXPECT_EQ(e2.trigger_time(), 150u);
  EXPECT_EQ(proc.tasks_run(), 2u);
  EXPECT_EQ(proc.busy_time(), 150u);
}

TEST(Processor, PreconditionGatesStart) {
  Simulator sim;
  Processor proc(sim, ProcId(0), NodeId(0), ProcKind::Compute);
  Event t = sim.timer(500);
  Event e = proc.enqueue(100, t);
  sim.run();
  EXPECT_EQ(e.trigger_time(), 600u);
}

TEST(Processor, BodyRunsAtCompletion) {
  Simulator sim;
  Processor proc(sim, ProcId(0), NodeId(0), ProcKind::Compute);
  SimTime body_at = kTimeNever;
  proc.enqueue(70, Event::no_event(), [&] { body_at = sim.now(); });
  sim.run();
  EXPECT_EQ(body_at, 70u);
}

TEST(Processor, IndependentTasksOverlapAcrossProcessors) {
  Simulator sim;
  Processor p0(sim, ProcId(0), NodeId(0), ProcKind::Compute);
  Processor p1(sim, ProcId(1), NodeId(0), ProcKind::Compute);
  Event a = p0.enqueue(100);
  Event b = p1.enqueue(100);
  EXPECT_EQ(sim.run(), 100u);
  EXPECT_TRUE(a.has_triggered() && b.has_triggered());
}

// ------------------------------------------------------------------- machine

TEST(Machine, Topology) {
  Machine m({.num_nodes = 4, .compute_procs_per_node = 2, .network = {}});
  EXPECT_EQ(m.num_nodes(), 4u);
  EXPECT_EQ(m.total_compute_procs(), 8u);
  EXPECT_EQ(m.analysis_proc(NodeId(2)).kind(), ProcKind::Analysis);
  EXPECT_EQ(m.compute_proc(NodeId(3), 1).node(), NodeId(3));
  // Global indexing covers every processor exactly once.
  std::set<std::uint32_t> ids;
  for (std::size_t i = 0; i < m.total_compute_procs(); ++i) {
    ids.insert(m.global_compute_proc(i).id().value);
  }
  EXPECT_EQ(ids.size(), 8u);
}

TEST(Processor, StatsResetClearsCounters) {
  Simulator sim;
  Processor proc(sim, ProcId(0), NodeId(0), ProcKind::Compute);
  proc.enqueue(100);
  sim.run();
  EXPECT_EQ(proc.tasks_run(), 1u);
  proc.reset_stats();
  EXPECT_EQ(proc.tasks_run(), 0u);
  EXPECT_EQ(proc.busy_time(), 0u);
}

TEST(Network, StatsReset) {
  Simulator sim;
  Network net(sim, 2, {});
  net.send(NodeId(0), NodeId(1), 100);
  sim.run();
  EXPECT_EQ(net.stats().messages, 1u);
  net.reset_stats();
  EXPECT_EQ(net.stats().messages, 0u);
  EXPECT_EQ(net.stats().bytes, 0u);
}

TEST(Simulator, IdenticalRunsAreBitIdentical) {
  auto run = [] {
    Simulator sim;
    Network net(sim, 4, {.alpha = us(1), .ns_per_byte = 0.5, .local_latency = ns(50)});
    std::vector<SimTime> deliveries;
    for (int i = 0; i < 20; ++i) {
      net.send(NodeId(static_cast<std::uint32_t>(i % 4)),
               NodeId(static_cast<std::uint32_t>((i + 1) % 4)),
               static_cast<std::uint64_t>(100 + i * 37))
          .on_trigger([&deliveries, &sim] { deliveries.push_back(sim.now()); });
    }
    sim.run();
    return deliveries;
  };
  EXPECT_EQ(run(), run());
}

TEST(Machine, TotalComputeBusyAggregates) {
  Machine m({.num_nodes = 2, .compute_procs_per_node = 1, .network = {}});
  m.compute_proc(NodeId(0), 0).enqueue(100);
  m.compute_proc(NodeId(1), 0).enqueue(250);
  m.sim().run();
  EXPECT_EQ(m.total_compute_busy(), 350u);
}

}  // namespace
}  // namespace dcr::sim
