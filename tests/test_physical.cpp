// Unit tests for the physical-state tracker: valid-instance accounting and
// copy planning over the simulated network.
#include <gtest/gtest.h>

#include "runtime/physical.hpp"

namespace dcr::rt {
namespace {

struct Fixture {
  sim::Simulator sim;
  sim::Network net{sim, 4, {.alpha = us(1), .ns_per_byte = 1.0, .local_latency = ns(50)}};
  RegionForest forest;
  FieldSpaceId fs = forest.create_field_space();
  FieldId f = forest.allocate_field(fs, 8, "f");
  RegionTreeId tree = forest.create_tree(Rect::r1(0, 399), fs);
  PhysicalState phys{forest, net};
};

TEST(PhysicalState, ReadOfUnwrittenDataIsFree) {
  Fixture fx;
  sim::Event e = fx.phys.acquire(fx.tree, fx.f, Rect::r1(0, 99), NodeId(1));
  EXPECT_TRUE(e.has_triggered());
  EXPECT_EQ(fx.phys.bytes_moved(), 0u);
}

TEST(PhysicalState, LocalReadAfterLocalWriteIsFree) {
  Fixture fx;
  fx.phys.record_write(fx.tree, fx.f, Rect::r1(0, 99), NodeId(0), sim::Event::no_event());
  sim::Event e = fx.phys.acquire(fx.tree, fx.f, Rect::r1(10, 20), NodeId(0));
  EXPECT_TRUE(e.has_triggered());
  EXPECT_EQ(fx.phys.bytes_moved(), 0u);
}

TEST(PhysicalState, RemoteReadCopiesExactOverlap) {
  Fixture fx;
  fx.phys.record_write(fx.tree, fx.f, Rect::r1(0, 99), NodeId(0), sim::Event::no_event());
  // Node 1 reads [90..109]; only [90..99] was written (by node 0).
  sim::Event e = fx.phys.acquire(fx.tree, fx.f, Rect::r1(90, 109), NodeId(1));
  EXPECT_FALSE(e.has_triggered());
  fx.sim.run();
  EXPECT_TRUE(e.has_triggered());
  EXPECT_EQ(fx.phys.bytes_moved(), 10u * 8u);
  EXPECT_EQ(fx.phys.copies_issued(), 1u);
}

TEST(PhysicalState, ReplicaPreventsDuplicateCopies) {
  Fixture fx;
  fx.phys.record_write(fx.tree, fx.f, Rect::r1(0, 99), NodeId(0), sim::Event::no_event());
  fx.phys.acquire(fx.tree, fx.f, Rect::r1(0, 99), NodeId(1));
  const std::uint64_t after_first = fx.phys.bytes_moved();
  fx.phys.acquire(fx.tree, fx.f, Rect::r1(0, 99), NodeId(1));
  EXPECT_EQ(fx.phys.bytes_moved(), after_first);
  EXPECT_EQ(fx.phys.copies_issued(), 1u);
}

TEST(PhysicalState, WriteInvalidatesReplicas) {
  Fixture fx;
  fx.phys.record_write(fx.tree, fx.f, Rect::r1(0, 99), NodeId(0), sim::Event::no_event());
  fx.phys.acquire(fx.tree, fx.f, Rect::r1(0, 99), NodeId(1));
  // Node 0 overwrites; node 1's replica must be invalidated.
  fx.phys.record_write(fx.tree, fx.f, Rect::r1(0, 99), NodeId(0), sim::Event::no_event());
  fx.phys.acquire(fx.tree, fx.f, Rect::r1(0, 99), NodeId(1));
  EXPECT_EQ(fx.phys.copies_issued(), 2u);
  EXPECT_EQ(fx.phys.bytes_moved(), 2u * 100u * 8u);
}

TEST(PhysicalState, PartialInvalidationKeepsRest) {
  Fixture fx;
  fx.phys.record_write(fx.tree, fx.f, Rect::r1(0, 99), NodeId(0), sim::Event::no_event());
  // Node 1 takes over the middle.
  fx.phys.record_write(fx.tree, fx.f, Rect::r1(40, 59), NodeId(1), sim::Event::no_event());
  auto holders = fx.phys.holders(fx.tree, fx.f, Rect::r1(0, 99));
  std::uint64_t node0_vol = 0, node1_vol = 0;
  for (const auto& [rect, node] : holders) {
    if (node == NodeId(0)) node0_vol += rect.volume();
    if (node == NodeId(1)) node1_vol += rect.volume();
  }
  EXPECT_EQ(node0_vol, 80u);
  EXPECT_EQ(node1_vol, 20u);
  // A read on node 2 copies from both.
  fx.phys.acquire(fx.tree, fx.f, Rect::r1(0, 99), NodeId(2));
  EXPECT_EQ(fx.phys.bytes_moved(), 100u * 8u);
  EXPECT_EQ(fx.phys.copies_issued(), 3u);  // [0,39],[60,99] from n0 + [40,59] from n1
}

TEST(PhysicalState, CopyWaitsForProducer) {
  Fixture fx;
  sim::UserEvent producer_done;
  fx.phys.record_write(fx.tree, fx.f, Rect::r1(0, 99), NodeId(0), producer_done);
  sim::Event e = fx.phys.acquire(fx.tree, fx.f, Rect::r1(0, 99), NodeId(1));
  fx.sim.schedule(ms(3), [&] { producer_done.trigger(fx.sim.now()); });
  fx.sim.run();
  ASSERT_TRUE(e.has_triggered());
  EXPECT_GE(e.trigger_time(), ms(3));
}

TEST(PhysicalState, ReadyEventTracksPendingWrites) {
  Fixture fx;
  sim::UserEvent w;
  fx.phys.record_write(fx.tree, fx.f, Rect::r1(0, 99), NodeId(0), w);
  sim::Event r = fx.phys.ready_event(fx.tree, fx.f, Rect::r1(50, 60));
  EXPECT_FALSE(r.has_triggered());
  w.trigger(7);
  EXPECT_TRUE(r.has_triggered());
  // Non-overlapping read is immediately ready.
  EXPECT_TRUE(fx.phys.ready_event(fx.tree, fx.f, Rect::r1(200, 300)).has_triggered());
}

TEST(PhysicalState, HaloExchangePattern) {
  // Classic 4-tile halo exchange: each tile writes its block on its node,
  // then each node reads its block +/- 1: exactly 2 boundary elements per
  // interior neighbor pair move.
  Fixture fx;
  for (std::uint32_t n = 0; n < 4; ++n) {
    fx.phys.record_write(fx.tree, fx.f,
                         Rect::r1(n * 100, n * 100 + 99), NodeId(n),
                         sim::Event::no_event());
  }
  for (std::int64_t n = 0; n < 4; ++n) {
    const std::int64_t lo = std::max<std::int64_t>(0, n * 100 - 1);
    const std::int64_t hi = std::min<std::int64_t>(399, n * 100 + 100);
    fx.phys.acquire(fx.tree, fx.f, Rect::r1(lo, hi), NodeId(static_cast<std::uint32_t>(n)));
  }
  // 3 interior boundaries, 2 elements each (one in each direction), 8B each.
  EXPECT_EQ(fx.phys.bytes_moved(), 3u * 2u * 8u);
  EXPECT_EQ(fx.phys.copies_issued(), 6u);
}

TEST(PhysicalState, DistinctFieldsTrackedIndependently) {
  Fixture fx;
  FieldId g = fx.forest.allocate_field(fx.fs, 8, "g");
  fx.phys.record_write(fx.tree, fx.f, Rect::r1(0, 99), NodeId(0), sim::Event::no_event());
  fx.phys.acquire(fx.tree, g, Rect::r1(0, 99), NodeId(1));
  EXPECT_EQ(fx.phys.bytes_moved(), 0u);  // field g never written
}

}  // namespace
}  // namespace dcr::rt
