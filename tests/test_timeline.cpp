// Tests for the execution-timeline profiler (Legion-Prof-style interval
// capture and Gantt rendering).
#include <gtest/gtest.h>

#include "apps/stencil.hpp"
#include "dcr/runtime.hpp"
#include "sim/timeline.hpp"

namespace dcr::sim {
namespace {

TEST(Timeline, RecordsIntervalsAndUtilization) {
  Timeline tl;
  tl.record(ProcId(0), 0, 50, "a");
  tl.record(ProcId(0), 50, 100, "b");
  tl.record(ProcId(1), 25, 75, "c");
  EXPECT_EQ(tl.intervals().size(), 3u);
  EXPECT_EQ(tl.span_end(), 100u);
  const auto util = tl.utilization();
  EXPECT_DOUBLE_EQ(util.at(ProcId(0)), 1.0);
  EXPECT_DOUBLE_EQ(util.at(ProcId(1)), 0.5);
}

TEST(Timeline, RenderShowsOneRowPerProcessor) {
  Timeline tl;
  tl.record(ProcId(0), 0, 100, "add_one");
  tl.record(ProcId(1), 50, 100, "mul_two");
  const std::string gantt = tl.render(20);
  EXPECT_NE(gantt.find("p0 |"), std::string::npos);
  EXPECT_NE(gantt.find("p1 |"), std::string::npos);
  EXPECT_NE(gantt.find('a'), std::string::npos);  // add_one's first letter
  EXPECT_NE(gantt.find('m'), std::string::npos);
  EXPECT_NE(gantt.find('.'), std::string::npos);  // p1's idle first half
}

TEST(Timeline, EmptyRendersEmpty) {
  Timeline tl;
  EXPECT_TRUE(tl.render().empty());
  EXPECT_TRUE(tl.utilization().empty());
}

TEST(Timeline, ProcessorRecordsWhenAttached) {
  Simulator sim;
  Timeline tl;
  Processor proc(sim, ProcId(3), NodeId(0), ProcKind::Compute);
  proc.attach_timeline(&tl);
  proc.enqueue(100, Event::no_event(), nullptr, "work");
  proc.enqueue(50, Event::no_event(), nullptr, "more");
  sim.run();
  ASSERT_EQ(tl.intervals().size(), 2u);
  EXPECT_EQ(tl.intervals()[0].start, 0u);
  EXPECT_EQ(tl.intervals()[0].end, 100u);
  EXPECT_EQ(tl.intervals()[0].label, "work");
  EXPECT_EQ(tl.intervals()[1].start, 100u);  // FIFO
  EXPECT_EQ(tl.intervals()[1].end, 150u);
}

TEST(Timeline, DcrRunProducesLabeledIntervals) {
  Machine machine({.num_nodes = 2,
                   .compute_procs_per_node = 1,
                   .network = {.alpha = us(1), .ns_per_byte = 0.1}});
  Timeline tl;
  machine.attach_timeline(&tl);
  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 10.0);
  core::DcrRuntime rt(machine, functions);
  const auto stats = rt.execute(
      apps::make_stencil_app({.cells_per_tile = 1000, .tiles = 4, .steps = 3}, fns));
  ASSERT_TRUE(stats.completed);
  // Every point task (12 non-fill) shows up with its function name.
  std::size_t named = 0;
  for (const auto& iv : tl.intervals()) {
    if (iv.label == "add_one" || iv.label == "mul_two" || iv.label == "stencil") ++named;
  }
  EXPECT_EQ(named, 4u * 3u * 3u);
  // The Gantt renders without incident and mentions both compute processors.
  const std::string gantt = tl.render(64);
  EXPECT_FALSE(gantt.empty());
}

}  // namespace
}  // namespace dcr::sim
