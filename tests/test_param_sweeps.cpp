// Parameterized property sweeps (TEST_P) over the main invariants:
//  * the DCR pipeline completes with the expected task count and no
//    determinism violation for any (nodes, tiles, steps, sharding, tracing)
//    combination of the stencil workload;
//  * every collective kind produces correct results at every rank count;
//  * Theorem 1 holds for a seed sweep of random programs.
#include <gtest/gtest.h>

#include <tuple>

#include "analysis/random_program.hpp"
#include "analysis/semantics.hpp"
#include "apps/stencil.hpp"
#include "dcr/runtime.hpp"
#include "sim/collective.hpp"

namespace dcr {
namespace {

// ------------------------------------------------------- stencil sweep

using StencilParam = std::tuple<std::size_t /*nodes*/, std::size_t /*tiles*/,
                                std::size_t /*steps*/, bool /*cyclic*/, bool /*trace*/>;

class StencilSweep : public ::testing::TestWithParam<StencilParam> {};

std::string stencil_param_name(const ::testing::TestParamInfo<StencilParam>& info) {
  return "n" + std::to_string(std::get<0>(info.param)) + "_t" +
         std::to_string(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param)) +
         (std::get<3>(info.param) ? "_cyclic" : "_blocked") +
         (std::get<4>(info.param) ? "_trace" : "_notrace");
}

TEST_P(StencilSweep, CompletesWithExactTaskCount) {
  const auto [nodes, tiles, steps, cyclic, trace] = GetParam();
  sim::Machine machine({.num_nodes = nodes,
                        .compute_procs_per_node = 1,
                        .network = {.alpha = us(1), .ns_per_byte = 0.1}});
  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  core::DcrRuntime rt(machine, functions);
  apps::StencilConfig cfg{.cells_per_tile = 64, .tiles = tiles, .steps = steps};
  cfg.sharding = cyclic ? core::ShardingRegistry::cyclic() : core::ShardingRegistry::blocked();
  cfg.use_trace = trace;
  const auto stats = rt.execute(apps::make_stencil_app(cfg, fns));
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  EXPECT_EQ(stats.point_tasks_launched, tiles * 3 * steps);
}

INSTANTIATE_TEST_SUITE_P(
    NodesTilesStepsShardingTrace, StencilSweep,
    ::testing::Combine(::testing::Values(1u, 3u, 4u), ::testing::Values(4u, 9u),
                       ::testing::Values(2u, 5u), ::testing::Bool(), ::testing::Bool()),
    stencil_param_name);

// ----------------------------------------------------- collective sweep

using CollectiveParam = std::tuple<std::size_t /*ranks*/, sim::CollectiveKind>;

class CollectiveSweep : public ::testing::TestWithParam<CollectiveParam> {};

std::string collective_param_name(const ::testing::TestParamInfo<CollectiveParam>& info) {
  static const char* names[] = {"reduce", "broadcast", "allreduce", "allgather"};
  return std::string(names[static_cast<int>(std::get<1>(info.param))]) + "_r" +
         std::to_string(std::get<0>(info.param));
}

TEST_P(CollectiveSweep, ProducesCorrectResult) {
  const auto [ranks, kind] = GetParam();
  sim::Simulator sim;
  sim::Network net(sim, ranks, {.alpha = us(1), .ns_per_byte = 0.0, .local_latency = ns(50)});
  std::vector<NodeId> nodes;
  for (std::size_t r = 0; r < ranks; ++r) {
    nodes.push_back(NodeId(static_cast<std::uint32_t>(r)));
  }
  sim::Collective<std::int64_t> coll(sim, net, nodes, kind, 8,
                                     [](std::int64_t a, std::int64_t b) { return a + b; });
  std::vector<sim::Event> done(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    done[r] = coll.arrive(r, static_cast<std::int64_t>(r) + 1);
  }
  sim.run();
  for (std::size_t r = 0; r < ranks; ++r) {
    EXPECT_TRUE(done[r].has_triggered()) << "rank " << r;
  }
  const auto n = static_cast<std::int64_t>(ranks);
  switch (kind) {
    case sim::CollectiveKind::AllReduce:
    case sim::CollectiveKind::Reduce:
      EXPECT_EQ(coll.result(), n * (n + 1) / 2);
      break;
    case sim::CollectiveKind::Broadcast:
      EXPECT_EQ(coll.result(), 1);  // rank 0's value
      break;
    case sim::CollectiveKind::AllGather:
      EXPECT_EQ(coll.result(), n * (n + 1) / 2);  // sum-combine stands in for concat
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndKinds, CollectiveSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 32u),
                       ::testing::Values(sim::CollectiveKind::AllReduce,
                                         sim::CollectiveKind::Reduce,
                                         sim::CollectiveKind::Broadcast,
                                         sim::CollectiveKind::AllGather)),
    collective_param_name);

// ------------------------------------------------------ Theorem 1 sweep

class Theorem1Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Theorem1Sweep, ReplicatedEqualsSequential) {
  const std::uint64_t seed = GetParam();
  an::RandomProgramConfig cfg;
  cfg.num_groups = 16;
  Philox4x32 gen(seed, 1);
  an::RandomProgram rp = an::generate_random_program(cfg, gen);
  ASSERT_TRUE(an::is_valid_program(rp.program, rp.oracle));
  const auto expected = an::analyze_sequential(rp.program, rp.oracle);
  for (std::size_t shards : {2u, 4u, 7u}) {
    const an::AProgram sharded = an::apply_cyclic_sharding(rp.program, shards);
    for (std::uint64_t il = 0; il < 3; ++il) {
      Philox4x32 rng(seed * 1000 + il, 2);
      ASSERT_EQ(an::analyze_replicated(sharded, shards, rp.oracle, rng), expected)
          << "shards=" << shards << " interleaving=" << il;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Sweep,
                         ::testing::Range<std::uint64_t>(100, 120));

}  // namespace
}  // namespace dcr
