// Integration tests for the DCR executor: pipeline correctness, fences and
// elision, futures, control-determinism checking, tracing, side effects.
#include <gtest/gtest.h>

#include <memory>

#include "apps/stencil.hpp"
#include "dcr/runtime.hpp"

namespace dcr::core {
namespace {

using apps::StencilConfig;
using apps::make_stencil_app;
using apps::register_stencil_functions;

struct Harness {
  sim::Machine machine;
  FunctionRegistry functions;
  DcrRuntime runtime;

  explicit Harness(std::size_t nodes, DcrConfig cfg = {}, std::size_t procs_per_node = 1)
      : machine({.num_nodes = nodes,
                 .compute_procs_per_node = procs_per_node,
                 .network = {.alpha = us(1), .ns_per_byte = 0.1, .local_latency = ns(50)}}),
        runtime(machine, functions, cfg) {}
};

TEST(DcrRuntime, StencilRunsToCompletionSingleShard) {
  Harness h(1);
  const auto fns = register_stencil_functions(h.functions, 1.0);
  const DcrStats stats =
      h.runtime.execute(make_stencil_app({.cells_per_tile = 100, .tiles = 4, .steps = 3}, fns));
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  // fill + 3 steps x 3 launches + the app's execution fence + the finalize
  // fence = 12 ops.
  EXPECT_EQ(stats.ops_issued, 12u);
  // 4 tiles x 3 launches x 3 steps point tasks + 1 fill.
  EXPECT_EQ(stats.point_tasks_launched, 36u);  // fills are metadata ops, not tasks
  EXPECT_GT(stats.makespan, 0u);
}

TEST(DcrRuntime, StencilScalesAcrossShards) {
  for (std::size_t nodes : {2u, 4u}) {
    Harness h(nodes);
    const auto fns = register_stencil_functions(h.functions, 1.0);
    const DcrStats stats = h.runtime.execute(
        make_stencil_app({.cells_per_tile = 100, .tiles = 8, .steps = 3}, fns));
    EXPECT_TRUE(stats.completed) << nodes << " nodes";
    EXPECT_FALSE(stats.determinism_violation);
    EXPECT_EQ(stats.point_tasks_launched, 8u * 3u * 3u);
  }
}

TEST(DcrRuntime, DeterministicAcrossRuns) {
  auto run = [] {
    Harness h(4);
    const auto fns = register_stencil_functions(h.functions, 1.0);
    return h.runtime
        .execute(make_stencil_app({.cells_per_tile = 50, .tiles = 8, .steps = 4}, fns))
        .makespan;
  };
  const SimTime a = run();
  EXPECT_EQ(a, run());
  EXPECT_EQ(a, run());
}

TEST(DcrRuntime, FenceElisionMatchesFigure10) {
  // Per step: add_one(owned) -> stencil(ghost RO state) crosses partitions
  // (fence); mul_two(interior) -> stencil(interior RW flux) is same
  // partition/sharding/projection (elided); add_one -> add_one next step is
  // same partition (elided); stencil(ghost) -> next add_one(owned) crosses
  // partitions (fence).
  Harness h(4);
  const auto fns = register_stencil_functions(h.functions, 1.0);
  const DcrStats stats = h.runtime.execute(
      make_stencil_app({.cells_per_tile = 100, .tiles = 8, .steps = 5}, fns));
  EXPECT_TRUE(stats.completed);
  EXPECT_GT(stats.fences_inserted, 0u);
  EXPECT_GT(stats.fences_elided, 0u);
  // Each step inserts fences for exactly two ops (stencil, and the next
  // add_one); the first fill->add_one/mul_two pair also fences, as do the
  // two execution-fence ops.
  EXPECT_LE(stats.fences_inserted, 2u + 2u * 5u + 2u);
  // mul_two->stencil elision plus same-launch step-to-step elisions.
  EXPECT_GE(stats.fences_elided, 5u);
}

TEST(DcrRuntime, RealizedGraphMatchesSequentialSemantics) {
  // End-to-end Theorem 1: the realized point-task dependence structure under
  // DCR must describe the same partial order as a sequential dependence
  // analysis of the same concrete task stream.
  for (std::size_t nodes : {1u, 2u, 3u}) {
    DcrConfig cfg;
    cfg.record_task_graph = true;
    Harness h(nodes, cfg);
    const auto fns = register_stencil_functions(h.functions, 1.0);
    const StencilConfig scfg{.cells_per_tile = 64, .tiles = 6, .steps = 3};
    const DcrStats stats = h.runtime.execute(make_stencil_app(scfg, fns));
    ASSERT_TRUE(stats.completed);

    // Rebuild the expected graph: sequential pairwise analysis over the
    // realized tasks in canonical (op, point) order using the same oracle.
    const auto& tasks = h.runtime.realized_tasks();
    ASSERT_FALSE(tasks.empty());
    std::vector<DcrRuntime::RealizedTask> ordered = tasks;
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) { return a.id < b.id; });

    // The realized graph must be acyclic and respect canonical order.
    const rt::TaskGraph& got = h.runtime.realized_graph();
    EXPECT_TRUE(got.is_acyclic());
    for (const auto& t : ordered) {
      for (TaskId p : got.predecessors(t.id)) EXPECT_LT(p, t.id);
    }
    // +1: the fill op is recorded in the realized graph but is not a task.
    EXPECT_EQ(got.num_tasks(), stats.point_tasks_launched + 1);
    EXPECT_GT(got.num_edges(), 0u);
  }
}

TEST(DcrRuntime, RealizedGraphIdenticalAcrossShardCounts) {
  auto realized = [](std::size_t nodes) {
    DcrConfig cfg;
    cfg.record_task_graph = true;
    auto h = std::make_unique<Harness>(nodes, cfg);
    const auto fns = register_stencil_functions(h->functions, 1.0);
    h->runtime.execute(
        make_stencil_app({.cells_per_tile = 64, .tiles = 6, .steps = 3}, fns));
    return h->runtime.realized_graph().transitive_closure();
  };
  const rt::TaskGraph one = realized(1);
  EXPECT_TRUE(one.same_partial_order(realized(2)));
  EXPECT_TRUE(one.same_partial_order(realized(3)));
  EXPECT_TRUE(one.same_partial_order(realized(6)));
}

// ------------------------------------------------------------------ futures

TEST(DcrRuntime, SingleTaskFutureBroadcastsToAllShards) {
  Harness h(4);
  const FunctionId fn = h.functions.register_simple(
      "produce", us(5), 0.0, [](const PointTaskInfo&) { return 42.5; });
  std::vector<double> seen(4, 0.0);
  const DcrStats stats = h.runtime.execute([&](Context& ctx) {
    TaskLaunch launch;
    launch.fn = fn;
    launch.wants_future = true;
    Future f = ctx.launch(launch);
    seen[ctx.shard_id().value] = ctx.get_future(f);
  });
  EXPECT_TRUE(stats.completed);
  for (double v : seen) EXPECT_EQ(v, 42.5);
}

TEST(DcrRuntime, FutureMapReduction) {
  Harness h(4);
  // Each point task returns its point index; sum over 8 points = 28.
  const FunctionId fn = h.functions.register_simple(
      "val", us(1), 0.0, [](const PointTaskInfo& info) {
        return static_cast<double>(info.point[0]);
      });
  std::vector<double> sums(4), mins(4), maxs(4);
  const DcrStats stats = h.runtime.execute([&](Context& ctx) {
    IndexLaunch launch;
    launch.fn = fn;
    launch.domain = rt::Rect::r1(0, 7);
    launch.wants_futures = true;
    FutureMap fm = ctx.index_launch(launch);
    Future fsum = ctx.reduce_future_map(fm, ReduceOp::Sum);
    Future fmin = ctx.reduce_future_map(fm, ReduceOp::Min);
    Future fmax = ctx.reduce_future_map(fm, ReduceOp::Max);
    sums[ctx.shard_id().value] = ctx.get_future(fsum);
    mins[ctx.shard_id().value] = ctx.get_future(fmin);
    maxs[ctx.shard_id().value] = ctx.get_future(fmax);
  });
  EXPECT_TRUE(stats.completed);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(sums[s], 28.0) << s;
    EXPECT_EQ(mins[s], 0.0) << s;
    EXPECT_EQ(maxs[s], 7.0) << s;
  }
}

TEST(DcrRuntime, DataDependentControlFlow) {
  // A convergence loop driven by a future value: "residual" halves per
  // iteration; loop until < 0.1.  Every shard must take the same number of
  // iterations with no determinism violation.
  Harness h(3);
  const FunctionId fn = h.functions.register_simple(
      "residual", us(2), 0.0, [](const PointTaskInfo& info) {
        return 1.0 / static_cast<double>(1 << info.args.at(0));
      });
  int iters = 0;
  const DcrStats stats = h.runtime.execute([&](Context& ctx) {
    int local_iters = 0;
    double residual = 1.0;
    while (residual >= 0.1) {
      TaskLaunch launch;
      launch.fn = fn;
      launch.wants_future = true;
      launch.args = {local_iters};
      residual = ctx.get_future(ctx.launch(launch));
      ++local_iters;
    }
    iters = local_iters;
  });
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  EXPECT_EQ(iters, 5);  // residuals 1, .5, .25, .125, .0625 — stops after the fifth
}

// ----------------------------------------------------- control determinism

TEST(DcrRuntime, DeterminismCheckerAcceptsReplicatedRng) {
  // Paper Figure 4 done right: branching on the *replicated* RNG is control
  // deterministic because every shard draws the same sequence.
  Harness h(4);
  const FunctionId a = h.functions.register_simple("algo0", us(1), 0.0);
  const FunctionId b = h.functions.register_simple("algo1", us(1), 0.0);
  const DcrStats stats = h.runtime.execute([&](Context& ctx) {
    for (int i = 0; i < 10; ++i) {
      TaskLaunch launch;
      launch.fn = ctx.rng().next_double() < 0.5 ? a : b;
      ctx.launch(launch);
    }
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  EXPECT_GT(stats.determinism_checks, 0u);
}

TEST(DcrRuntime, DeterminismCheckerCatchesShardDependentBranch) {
  // Paper Figure 4 done wrong: the branch differs per shard (here: on the
  // shard id, the simplest non-replicated "randomness").
  Harness h(4);
  const FunctionId a = h.functions.register_simple("algo0", us(1), 0.0);
  const FunctionId b = h.functions.register_simple("algo1", us(1), 0.0);
  const DcrStats stats = h.runtime.execute([&](Context& ctx) {
    TaskLaunch launch;
    launch.fn = (ctx.shard_id().value % 2 == 0) ? a : b;
    ctx.launch(launch);
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.determinism_violation);
  EXPECT_NE(stats.violation_message.find("launch"), std::string::npos);
}

TEST(DcrRuntime, DeterminismCheckerCatchesDivergentArguments) {
  Harness h(2);
  const FunctionId fn = h.functions.register_simple("t", us(1), 0.0);
  const DcrStats stats = h.runtime.execute([&](Context& ctx) {
    TaskLaunch launch;
    launch.fn = fn;
    launch.args = {static_cast<std::int64_t>(ctx.shard_id().value)};  // diverges!
    ctx.launch(launch);
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.determinism_violation);
}

TEST(DcrRuntime, ChecksCanBeDisabled) {
  DcrConfig cfg;
  cfg.determinism_checks = false;
  Harness h(4, cfg);
  const auto fns = register_stencil_functions(h.functions, 1.0);
  const DcrStats stats = h.runtime.execute(
      make_stencil_app({.cells_per_tile = 50, .tiles = 4, .steps = 2}, fns));
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.determinism_checks, 0u);
}

TEST(DcrRuntime, ChecksAddOverheadButNotMuchWithSlackBandwidth) {
  auto run = [](bool safe) {
    DcrConfig cfg;
    cfg.determinism_checks = safe;
    Harness h(4, cfg);
    const auto fns = register_stencil_functions(h.functions, 10.0);
    return h.runtime
        .execute(make_stencil_app({.cells_per_tile = 2000, .tiles = 8, .steps = 5}, fns))
        .makespan;
  };
  const SimTime unsafe = run(false);
  const SimTime safe = run(true);
  EXPECT_GE(safe, unsafe);
  // Paper §5.5: with unused communication bandwidth the checks are nearly
  // free; allow a few percent.
  EXPECT_LT(static_cast<double>(safe), static_cast<double>(unsafe) * 1.05);
}

// ------------------------------------------------------------------ tracing

TEST(DcrRuntime, TracingReducesAnalysisTime) {
  auto run = [](bool trace) {
    DcrConfig cfg;
    Harness h(4, cfg);
    const auto fns = register_stencil_functions(h.functions, 1.0);
    StencilConfig scfg{.cells_per_tile = 100, .tiles = 8, .steps = 20};
    scfg.use_trace = trace;
    auto stats = h.runtime.execute(make_stencil_app(scfg, fns));
    EXPECT_TRUE(stats.completed);
    return stats;
  };
  const DcrStats traced = run(true);
  const DcrStats untraced = run(false);
  EXPECT_GT(traced.traced_ops, 0u);
  EXPECT_EQ(untraced.traced_ops, 0u);
  EXPECT_LT(traced.analysis_busy, untraced.analysis_busy);
}

TEST(DcrRuntime, TraceReplayPreservesExecution) {
  auto tasks = [](bool trace) {
    Harness h(2);
    const auto fns = register_stencil_functions(h.functions, 1.0);
    StencilConfig scfg{.cells_per_tile = 100, .tiles = 4, .steps = 6};
    scfg.use_trace = trace;
    return h.runtime.execute(make_stencil_app(scfg, fns)).point_tasks_launched;
  };
  EXPECT_EQ(tasks(true), tasks(false));
}

TEST(DcrRuntime, ChangedTraceInvalidatesAndReRecords) {
  // A trace whose body changes shape mid-run must fall back to fresh
  // analysis (fewer replayed ops) but still execute correctly.
  Harness h(2);
  const FunctionId fa = h.functions.register_simple("a", us(1), 0.0);
  const FunctionId fb = h.functions.register_simple("b", us(1), 0.0);
  const DcrStats stats = h.runtime.execute([&](Context& ctx) {
    FieldSpaceId fs = ctx.create_field_space();
    const FieldId f = ctx.allocate_field(fs, 8, "f");
    const RegionTreeId tree = ctx.create_region(rt::Rect::r1(0, 99), fs);
    const PartitionId part = ctx.partition_equal(ctx.root(tree), 2);
    for (int i = 0; i < 8; ++i) {
      ctx.begin_trace(TraceId(7));
      IndexLaunch launch;
      launch.fn = (i < 3) ? fa : fb;  // shape change at iteration 3
      launch.domain = rt::Rect::r1(0, 1);
      launch.requirements.push_back(
          rt::GroupRequirement::on_partition(part, {f}, rt::Privilege::ReadWrite));
      ctx.index_launch(launch);
      ctx.end_trace(TraceId(7));
    }
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  // Lifecycle per shard: iteration 0 captures; iteration 1's shadow compare
  // mismatches (iteration 0 had no predecessor) and re-records; iteration 2
  // validates; iteration 3 would replay but the changed function diverges the
  // call hash, aborting the window and dropping the template; iteration 4
  // re-captures, 5 validates, and only 6..7 replay: 2 ops x 2 shards.
  EXPECT_EQ(stats.traced_ops, 4u);
  EXPECT_EQ(stats.templates_captured, 4u);           // iterations 0 and 4, per shard
  EXPECT_EQ(stats.template_invalidations, 2u);       // the iteration-3 abort, per shard
  EXPECT_EQ(stats.template_validation_failures, 2u); // the iteration-1 re-record, per shard
  EXPECT_EQ(stats.template_replays, 4u);             // iterations 6..7, per shard
}

// ------------------------------------------------------------- side effects

TEST(DcrRuntime, AttachDetachRoundTrip) {
  Harness h(2);
  const FunctionId fn = h.functions.register_simple("consume", us(1), 1.0);
  const DcrStats stats = h.runtime.execute([&](Context& ctx) {
    FieldSpaceId fs = ctx.create_field_space();
    const FieldId f = ctx.allocate_field(fs, 8, "f");
    const RegionTreeId tree = ctx.create_region(rt::Rect::r1(0, 999), fs);
    const IndexSpaceId region = ctx.root(tree);
    ctx.attach_file(region, {f}, "input.h5");
    TaskLaunch launch;
    launch.fn = fn;
    launch.requirements.push_back(rt::Requirement{region, {f}, rt::Privilege::ReadWrite, 0});
    ctx.launch(launch);
    ctx.detach_file(region, {f});
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  EXPECT_EQ(stats.ops_issued, 5u);  // attach + launch + detach + 2 fence ops
}

TEST(DcrRuntime, ImmediateRegionDeletion) {
  Harness h(2);
  const FunctionId fn = h.functions.register_simple("t", us(1), 0.0);
  RegionTreeId victim;
  Harness* hp = &h;
  const DcrStats stats = h.runtime.execute([&](Context& ctx) {
    FieldSpaceId fs = ctx.create_field_space();
    const FieldId f = ctx.allocate_field(fs, 8, "f");
    victim = ctx.create_region(rt::Rect::r1(0, 9), fs);
    TaskLaunch launch;
    launch.fn = fn;
    launch.requirements.push_back(
        rt::Requirement{ctx.root(victim), {f}, rt::Privilege::ReadWrite, 0});
    ctx.launch(launch);
    ctx.destroy_region(victim);
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.completed);
  EXPECT_TRUE(hp->runtime.forest().tree_destroyed(victim));
}

TEST(DcrRuntime, DeferredDeletionReachesConsensusAcrossSkewedShards) {
  // Shards request the deferred deletion at different control points (after
  // different amounts of work), like GC finalizers firing at arbitrary
  // times.  The runtime must agree on a single insertion point; the tree is
  // destroyed; no determinism violation.
  Harness h(4);
  const FunctionId fn = h.functions.register_simple("t", us(5), 0.0);
  RegionTreeId victim;
  Harness* hp = &h;
  const DcrStats stats = h.runtime.execute([&](Context& ctx) {
    FieldSpaceId fs = ctx.create_field_space();
    ctx.allocate_field(fs, 8, "f");
    victim = ctx.create_region(rt::Rect::r1(0, 9), fs);
    for (int i = 0; i < 8; ++i) {
      TaskLaunch launch;
      launch.fn = fn;
      ctx.launch(launch);
      // Different shards "GC" at different iterations.
      if (i == static_cast<int>(ctx.shard_id().value) * 2) {
        ctx.destroy_region_deferred(victim);
      }
    }
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  EXPECT_TRUE(hp->runtime.forest().tree_destroyed(victim));
}

// ----------------------------------------------------------- miscellaneous

TEST(DcrRuntime, ShardsPerNodeMapsToProcessors) {
  DcrConfig cfg;
  cfg.shards_per_node = 2;
  Harness h(2, cfg, /*procs_per_node=*/2);
  EXPECT_EQ(h.runtime.num_shards(), 4u);
  const auto fns = register_stencil_functions(h.functions, 1.0);
  const DcrStats stats = h.runtime.execute(
      make_stencil_app({.cells_per_tile = 100, .tiles = 8, .steps = 2}, fns));
  EXPECT_TRUE(stats.completed);
  // All four compute processors did work.
  for (std::uint32_t n = 0; n < 2; ++n) {
    for (std::size_t p = 0; p < 2; ++p) {
      EXPECT_GT(h.machine.compute_proc(NodeId(n), p).tasks_run(), 0u);
    }
  }
}

TEST(DcrRuntime, CoarseCostIndependentOfGroupSize) {
  // Doubling the tiles (group width) with fixed op count must not change the
  // number of coarse-analyzed ops, only fine-stage work.  We verify through
  // analysis busy time: growth should be ~2x fine (per-point) work, far less
  // than 2x total if coarse dominated.
  auto ops = [](std::size_t tiles) {
    Harness h(1);
    const auto fns = register_stencil_functions(h.functions, 1.0);
    return h.runtime.execute(
        make_stencil_app({.cells_per_tile = 10, .tiles = tiles, .steps = 4}, fns));
  };
  const DcrStats small = ops(4);
  const DcrStats big = ops(64);
  EXPECT_EQ(small.ops_issued, big.ops_issued);
  EXPECT_EQ(small.coarse_deps, big.coarse_deps);
}

}  // namespace
}  // namespace dcr::core
