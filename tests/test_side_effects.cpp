// Tests for the §4.3 side-effect machinery: parallel (group) file I/O,
// single-owner file I/O ordering, deferred deletions under varied GC
// timings, and API-misuse death tests (the runtime must fail loudly, never
// corrupt the analysis).
#include <gtest/gtest.h>

#include "apps/stencil.hpp"
#include "baselines/central.hpp"
#include "dcr/runtime.hpp"

namespace dcr::core {
namespace {

struct Harness {
  sim::Machine machine;
  FunctionRegistry functions;
  DcrRuntime runtime;
  explicit Harness(std::size_t nodes, DcrConfig cfg = {})
      : machine({.num_nodes = nodes,
                 .compute_procs_per_node = 1,
                 .network = {.alpha = us(1), .ns_per_byte = 0.1}}),
        runtime(machine, functions, cfg) {}
};

// ------------------------------------------------------- group file I/O

TEST(GroupAttach, ParallelReadFeedsShardedCompute) {
  Harness h(4);
  const FunctionId fn = h.functions.register_simple("consume", us(2), 1.0);
  const auto stats = h.runtime.execute([&](Context& ctx) {
    FieldSpaceId fs = ctx.create_field_space();
    const FieldId f = ctx.allocate_field(fs, 8, "f");
    const RegionTreeId tree = ctx.create_region(rt::Rect::r1(0, 4095), fs);
    const PartitionId part = ctx.partition_equal(ctx.root(tree), 8);
    ctx.attach_file_group(part, {f}, "checkpoint");
    IndexLaunch l;
    l.fn = fn;
    l.domain = rt::Rect::r1(0, 7);
    l.requirements.push_back(
        rt::GroupRequirement::on_partition(part, {f}, rt::Privilege::ReadWrite));
    ctx.index_launch(l);
    ctx.detach_file_group(part, {f});
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  EXPECT_EQ(stats.point_tasks_launched, 8u);
}

TEST(GroupAttach, ParallelIoIsFasterThanSingleOwner) {
  // The reason the paper provides group variants: N file pieces read by N
  // shards concurrently beat one owner shard reading everything.
  auto makespan = [](bool grouped) {
    Harness h(8);
    const auto stats = h.runtime.execute([&](Context& ctx) {
      FieldSpaceId fs = ctx.create_field_space();
      const FieldId f = ctx.allocate_field(fs, 8, "f");
      const RegionTreeId tree = ctx.create_region(rt::Rect::r1(0, (1 << 20) - 1), fs);
      const PartitionId part = ctx.partition_equal(ctx.root(tree), 8);
      if (grouped) {
        ctx.attach_file_group(part, {f}, "data");
      } else {
        ctx.attach_file(ctx.root(tree), {f}, "data");
      }
      ctx.execution_fence();
    });
    EXPECT_TRUE(stats.completed);
    return stats.makespan;
  };
  const SimTime grouped = makespan(true);
  const SimTime single = makespan(false);
  EXPECT_LT(grouped * 4, single);  // ~8x I/O parallelism
}

TEST(GroupAttach, DetachFlushesAfterCompute) {
  // Writes must complete before the flush reads them: the detach's fine
  // stage orders behind the compute launch via the coarse analysis.
  Harness h(2);
  const FunctionId fn = h.functions.register_simple("produce", ms(1), 0.0);
  const auto stats = h.runtime.execute([&](Context& ctx) {
    FieldSpaceId fs = ctx.create_field_space();
    const FieldId f = ctx.allocate_field(fs, 8, "f");
    const RegionTreeId tree = ctx.create_region(rt::Rect::r1(0, 1023), fs);
    const PartitionId part = ctx.partition_equal(ctx.root(tree), 4);
    IndexLaunch l;
    l.fn = fn;
    l.domain = rt::Rect::r1(0, 3);
    l.requirements.push_back(
        rt::GroupRequirement::on_partition(part, {f}, rt::Privilege::WriteDiscard));
    ctx.index_launch(l);
    ctx.detach_file_group(part, {f});
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.completed);
  // The flush could not have finished before the 1 ms producers.
  EXPECT_GT(stats.makespan, ms(1));
}

TEST(GroupAttach, WorksOnCentralBaselineToo) {
  sim::Machine machine({.num_nodes = 4,
                        .compute_procs_per_node = 1,
                        .network = {.alpha = us(1), .ns_per_byte = 0.1}});
  FunctionRegistry functions;
  baselines::CentralRuntime rt(machine, functions);
  const auto stats = rt.execute([&](Context& ctx) {
    FieldSpaceId fs = ctx.create_field_space();
    const FieldId f = ctx.allocate_field(fs, 8, "f");
    const RegionTreeId tree = ctx.create_region(rt::Rect::r1(0, 1023), fs);
    const PartitionId part = ctx.partition_equal(ctx.root(tree), 4);
    ctx.attach_file_group(part, {f}, "in");
    ctx.detach_file_group(part, {f});
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.ops_issued, 8u);  // 4 attaches + 4 detaches, serialized
}

// ------------------------------------------- deferred deletions, stressed

TEST(DeferredDeletion, ManyTreesManyTimings) {
  Harness h(4);
  const FunctionId fn = h.functions.register_simple("t", us(5), 0.0);
  std::vector<RegionTreeId> victims;
  Harness* hp = &h;
  const auto stats = h.runtime.execute([&](Context& ctx) {
    FieldSpaceId fs = ctx.create_field_space();
    ctx.allocate_field(fs, 8, "f");
    std::vector<RegionTreeId> local;
    for (int i = 0; i < 3; ++i) local.push_back(ctx.create_region(rt::Rect::r1(0, 9), fs));
    if (ctx.shard_id() == ShardId(0)) victims = local;
    for (int step = 0; step < 12; ++step) {
      TaskLaunch launch;
      launch.fn = fn;
      ctx.launch(launch);
      // Each tree's "finalizer" fires at a different, shard-dependent step —
      // but in the same order on every shard, as real GC order would be for
      // objects that died in the same program order.
      for (int v = 0; v < 3; ++v) {
        if (step == 2 + v * 3 + static_cast<int>(ctx.shard_id().value)) {
          ctx.destroy_region_deferred(local[static_cast<std::size_t>(v)]);
        }
      }
    }
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  for (RegionTreeId v : victims) {
    EXPECT_TRUE(hp->runtime.forest().tree_destroyed(v));
  }
}

TEST(DeferredDeletion, NoRequestsMeansNoPollerCost) {
  Harness h(2);
  const FunctionId fn = h.functions.register_simple("t", us(1), 0.0);
  const auto stats = h.runtime.execute([&](Context& ctx) {
    TaskLaunch launch;
    launch.fn = fn;
    ctx.launch(launch);
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.completed);
}

// ------------------------------------------------------------ death tests

using SideEffectsDeathTest = ::testing::Test;

TEST(SideEffectsDeathTest, ReducingInvalidFutureMapAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Harness h(1);
        h.runtime.execute([&](Context& ctx) {
          ctx.reduce_future_map(FutureMap{}, ReduceOp::Sum);
        });
      },
      "invalid future map");
}

TEST(SideEffectsDeathTest, MismatchedEndTraceAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Harness h(1);
        h.runtime.execute([&](Context& ctx) {
          ctx.begin_trace(TraceId(1));
          ctx.end_trace(TraceId(2));
        });
      },
      "mismatched end_trace");
}

TEST(SideEffectsDeathTest, PartitionEscapingParentAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        rt::RegionForest forest;
        FieldSpaceId fs = forest.create_field_space();
        RegionTreeId tree = forest.create_tree(rt::Rect::r1(0, 9), fs);
        forest.create_partition(forest.root(tree), {rt::Rect::r1(5, 15)}, true);
      },
      "escapes parent");
}

TEST(SideEffectsDeathTest, DoubleDestroyAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        rt::RegionForest forest;
        FieldSpaceId fs = forest.create_field_space();
        RegionTreeId tree = forest.create_tree(rt::Rect::r1(0, 9), fs);
        forest.destroy_tree(tree);
        forest.destroy_tree(tree);
      },
      "double destroy");
}

TEST(SideEffectsDeathTest, WaitingOnInvalidFutureAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Harness h(1);
        h.runtime.execute([&](Context& ctx) { ctx.get_future(Future{}); });
      },
      "invalid future");
}

}  // namespace
}  // namespace dcr::core
