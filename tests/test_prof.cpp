// dcr-prof: the always-on profiling and metrics layer (src/prof).
//
// Counter-accounting invariants that hold by construction (fences issued +
// elided == fence decisions; template window hits + misses == window
// closures), span-tree well-formedness (no negative durations, strict
// nesting per (shard, lane) track), Chrome trace_event schema validation,
// bitwise counter determinism across seeded re-runs, the prof-vs-spy
// fence/elision cross-check, a golden counter snapshot for the stencil, the
// seed_for_label collision audit for every fuzz suite in the repo, and a
// 100-seed profile-on/off equivalence sweep under fault injection +
// dependence templates (labelled fuzz; the rest runs in check-fast).
//
// Regenerate the golden snapshot after an intentional analysis change with:
//   DCR_UPDATE_GOLDEN=1 ctest -L prof
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "apps/circuit.hpp"
#include "apps/stencil.hpp"
#include "common/philox.hpp"
#include "dcr/runtime.hpp"
#include "dcr_fuzz_programs.hpp"
#include "prof/json.hpp"
#include "prof/report.hpp"
#include "prof/validate.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "spy/verify.hpp"

#ifndef DCR_GOLDEN_DIR
#define DCR_GOLDEN_DIR "tests/golden"
#endif

namespace dcr::core {
namespace {

using apps::StencilConfig;
using apps::make_stencil_app;
using apps::register_stencil_functions;

sim::MachineConfig cluster(std::size_t nodes) {
  return {.num_nodes = nodes,
          .compute_procs_per_node = 1,
          .network = {.alpha = us(1), .ns_per_byte = 0.1, .local_latency = ns(50)}};
}

// Owns the machine/registry/runtime for one run so tests can interrogate the
// profiler after execute() returns.
struct Harness {
  sim::Machine machine;
  FunctionRegistry functions;
  DcrRuntime runtime;

  Harness(std::size_t nodes, DcrConfig cfg)
      : machine(cluster(nodes)), runtime(machine, functions, cfg) {}

  const prof::Profiler& prof() const { return runtime.profiler(); }
};

DcrConfig prof_config(bool spans, bool trace = false, bool graph = false) {
  DcrConfig cfg;
  cfg.profile = spans;
  cfg.record_trace = trace;
  cfg.record_task_graph = graph;
  return cfg;
}

DcrStats run_stencil(Harness& h, const StencilConfig& scfg) {
  const auto fns = register_stencil_functions(h.functions, 1.0);
  return h.runtime.execute(make_stencil_app(scfg, fns));
}

std::string snapshot_of(const Harness& h, bool zero_volatile = false) {
  std::ostringstream os;
  h.prof().write_snapshot_json(os, zero_volatile);
  return os.str();
}

// The two ledger invariants every run must satisfy, plus agreement with the
// legacy DcrStats counters where both exist.
void expect_counter_invariants(const Harness& h, const DcrStats& stats) {
  const prof::Counters& g = h.prof().global();
  const std::uint64_t issued = g.get(prof::GlobalCounter::FencesIssued);
  const std::uint64_t elided = g.get(prof::GlobalCounter::FencesElided);
  const std::uint64_t decisions = g.get(prof::GlobalCounter::FenceDecisions);
  EXPECT_EQ(issued + elided, decisions);
  EXPECT_EQ(decisions, stats.coarse_deps);
  EXPECT_EQ(elided, stats.fences_elided);
  for (std::uint32_t s = 0; s < h.prof().num_shards(); ++s) {
    const prof::Counters& pc = h.prof().shard(s);
    EXPECT_EQ(pc.get(prof::Counter::TemplateWindowHits) +
                  pc.get(prof::Counter::TemplateWindowMisses),
              pc.get(prof::Counter::WindowsClosed))
        << "shard " << s;
  }
}

// ------------------------------------------------------- counter accounting

TEST(ProfCounters, StencilFenceAccounting) {
  Harness h(8, prof_config(/*spans=*/true));
  const DcrStats stats =
      run_stencil(h, {.cells_per_tile = 64, .tiles = 16, .steps = 4});
  ASSERT_TRUE(stats.completed);
  expect_counter_invariants(h, stats);

  const prof::Counters& g = h.prof().global();
  EXPECT_GT(g.get(prof::GlobalCounter::FenceDecisions), 0u);
  EXPECT_GT(g.get(prof::GlobalCounter::FencesElided), 0u);
  // Elision enabled: every decision ran the shard-locality proof, and the
  // proof succeeded exactly on the elided ones.
  EXPECT_EQ(g.get(prof::GlobalCounter::ElisionProofsAttempted),
            g.get(prof::GlobalCounter::FenceDecisions));
  EXPECT_EQ(g.get(prof::GlobalCounter::ElisionProofsSucceeded),
            g.get(prof::GlobalCounter::FencesElided));
  // The control program is replicated: every shard analyzes every op.
  const std::uint64_t ops0 = h.prof().shard(0).get(prof::Counter::CoarseOps);
  EXPECT_GT(ops0, 0u);
  for (std::uint32_t s = 1; s < h.prof().num_shards(); ++s) {
    EXPECT_EQ(h.prof().shard(s).get(prof::Counter::CoarseOps), ops0) << "shard " << s;
  }
  EXPECT_GT(h.prof().total(prof::Counter::FinePoints), 0u);
  EXPECT_GT(g.get(prof::GlobalCounter::FenceCollectives), 0u);
}

TEST(ProfCounters, DisabledElisionSkipsProofs) {
  DcrConfig cfg = prof_config(false);
  cfg.disable_fence_elision = true;
  Harness h(4, cfg);
  const DcrStats stats =
      run_stencil(h, {.cells_per_tile = 64, .tiles = 8, .steps = 3});
  ASSERT_TRUE(stats.completed);
  const prof::Counters& g = h.prof().global();
  EXPECT_EQ(g.get(prof::GlobalCounter::ElisionProofsAttempted), 0u);
  EXPECT_EQ(g.get(prof::GlobalCounter::ElisionProofsSucceeded), 0u);
  EXPECT_EQ(g.get(prof::GlobalCounter::FencesElided), 0u);
  EXPECT_EQ(g.get(prof::GlobalCounter::FencesIssued),
            g.get(prof::GlobalCounter::FenceDecisions));
}

TEST(ProfCounters, TemplateWindowAccounting) {
  Harness h(8, prof_config(/*spans=*/true));
  StencilConfig scfg{.cells_per_tile = 64, .tiles = 16, .steps = 6};
  scfg.use_trace = true;
  const DcrStats stats = run_stencil(h, scfg);
  ASSERT_TRUE(stats.completed);
  expect_counter_invariants(h, stats);

  std::uint64_t hits = 0, misses = 0, closed = 0;
  for (std::uint32_t s = 0; s < h.prof().num_shards(); ++s) {
    const prof::Counters& pc = h.prof().shard(s);
    hits += pc.get(prof::Counter::TemplateWindowHits);
    misses += pc.get(prof::Counter::TemplateWindowMisses);
    closed += pc.get(prof::Counter::WindowsClosed);
  }
  EXPECT_EQ(hits + misses, closed);
  EXPECT_GT(hits, 0u);    // steady state replays
  EXPECT_GT(misses, 0u);  // capture + validation iterations
  // No recovery in this run, so every hit is exactly one whole-window replay.
  EXPECT_EQ(hits, stats.template_replays);
  EXPECT_GT(h.prof().total(prof::Counter::TracedCoarseOps), 0u);
}

// ----------------------------------------------------------- span timeline

TEST(ProfSpans, OffByDefaultOnWhenRequested) {
  {
    Harness h(4, prof_config(/*spans=*/false));
    ASSERT_TRUE(run_stencil(h, {.cells_per_tile = 64, .tiles = 8, .steps = 3}).completed);
    EXPECT_TRUE(h.prof().spans().empty());
    // ...but the counters were live the whole time.
    EXPECT_GT(h.prof().global().get(prof::GlobalCounter::FenceDecisions), 0u);
  }
  {
    Harness h(4, prof_config(/*spans=*/true));
    ASSERT_TRUE(run_stencil(h, {.cells_per_tile = 64, .tiles = 8, .steps = 3}).completed);
    EXPECT_FALSE(h.prof().spans().empty());
  }
}

TEST(ProfSpans, WellFormedAndStrictlyNestedPerTrack) {
  Harness h(8, prof_config(/*spans=*/true));
  StencilConfig scfg{.cells_per_tile = 64, .tiles = 16, .steps = 5};
  scfg.use_trace = true;
  ASSERT_TRUE(run_stencil(h, scfg).completed);
  const std::vector<prof::Span>& spans = h.prof().spans();
  ASSERT_FALSE(spans.empty());

  // Group by (shard, lane) — the Chrome-trace track — and require the spans
  // on each track to form a forest: sorted by (start asc, end desc), every
  // span either starts after the enclosing one ends or closes inside it.
  struct Key {
    std::uint32_t shard;
    prof::Lane lane;
    bool operator<(const Key& o) const {
      return shard != o.shard ? shard < o.shard : lane < o.lane;
    }
  };
  std::map<Key, std::vector<prof::Span>> tracks;
  for (const prof::Span& s : spans) {
    EXPECT_GE(s.end, s.start) << prof::name(s.kind);
    EXPECT_LT(s.shard, h.prof().num_shards());
    tracks[{s.shard, s.lane}].push_back(s);
  }
  for (auto& [key, track] : tracks) {
    std::sort(track.begin(), track.end(), [](const prof::Span& a, const prof::Span& b) {
      return a.start != b.start ? a.start < b.start : a.end > b.end;
    });
    std::vector<SimTime> stack;  // enclosing span end times
    for (const prof::Span& s : track) {
      while (!stack.empty() && stack.back() <= s.start) stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(s.end, stack.back())
            << prof::name(s.kind) << " straddles its enclosing span on shard "
            << key.shard << " lane " << prof::name(key.lane);
      }
      stack.push_back(s.end);
    }
  }

  // The traced stencil exercises every span kind except recovery.
  std::set<prof::SpanKind> kinds;
  for (const prof::Span& s : spans) kinds.insert(s.kind);
  EXPECT_TRUE(kinds.count(prof::SpanKind::CoarseAnalysis));
  EXPECT_TRUE(kinds.count(prof::SpanKind::CoarseReplay));
  EXPECT_TRUE(kinds.count(prof::SpanKind::FineAnalysis));
  EXPECT_TRUE(kinds.count(prof::SpanKind::FineReplay));
  EXPECT_TRUE(kinds.count(prof::SpanKind::TraceWindow));
  EXPECT_TRUE(kinds.count(prof::SpanKind::ExecutionFence));
}

TEST(ProfSpans, ChromeTraceSchemaValid) {
  Harness h(4, prof_config(/*spans=*/true));
  StencilConfig scfg{.cells_per_tile = 64, .tiles = 8, .steps = 4};
  scfg.use_trace = true;
  ASSERT_TRUE(run_stencil(h, scfg).completed);
  std::ostringstream os;
  h.prof().write_chrome_trace(os);
  const std::vector<std::string> errors = prof::validate_chrome_trace(os.str());
  for (const std::string& e : errors) ADD_FAILURE() << e;
  // And the validator is not vacuous: a malformed document fails.
  EXPECT_FALSE(prof::validate_chrome_trace("{\"traceEvents\": 3}").empty());
  EXPECT_FALSE(prof::validate_chrome_trace("[1,2]").empty());
  EXPECT_FALSE(
      prof::validate_chrome_trace(
          "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"X\",\"pid\":0,\"tid\":0}]}")
          .empty());  // "X" event missing ts/dur
}

TEST(ProfReport, CriticalPathAndKindTotals) {
  Harness h(4, prof_config(/*spans=*/true));
  StencilConfig scfg{.cells_per_tile = 64, .tiles = 8, .steps = 4};
  scfg.use_trace = true;
  const DcrStats stats = run_stencil(h, scfg);
  ASSERT_TRUE(stats.completed);
  const prof::Report report = prof::build_report(h.prof());
  ASSERT_FALSE(report.by_kind.empty());
  // Kind totals are sorted descending and cover every recorded span.
  std::uint64_t spans_in_kinds = 0;
  for (std::size_t i = 0; i < report.by_kind.size(); ++i) {
    spans_in_kinds += report.by_kind[i].count;
    if (i > 0) {
      EXPECT_LE(report.by_kind[i].inclusive_ns, report.by_kind[i - 1].inclusive_ns);
    }
  }
  EXPECT_EQ(spans_in_kinds, h.prof().spans().size());
  // The critical path is a chain: ordered, non-overlapping, weight == total.
  ASSERT_GT(report.critical_path_ns, 0u);
  EXPECT_LE(report.critical_path_ns, stats.makespan);
  SimTime chain_weight = 0;
  for (std::size_t i = 0; i < report.critical_chain.size(); ++i) {
    chain_weight += report.critical_chain[i].end - report.critical_chain[i].start;
    if (i > 0) {
      EXPECT_GE(report.critical_chain[i].start, report.critical_chain[i - 1].end);
    }
  }
  EXPECT_EQ(chain_weight, report.critical_path_ns);
  EXPECT_FALSE(report.per_iteration.empty());
  // Rendering is exercised for coverage (content is for humans).
  std::ostringstream os;
  prof::render_report(os, h.prof(), report);
  EXPECT_NE(os.str().find("critical path"), std::string::npos);
}

// ------------------------------------------------------------- determinism

TEST(ProfDeterminism, IdenticalSeededRunsProduceIdenticalSnapshots) {
  Philox4x32 rng(fuzz::seed_for_label("prof", 7), /*stream=*/11);
  const fuzz::LoopDcrProgram program = fuzz::generate_loop(rng, /*tiles=*/6);
  auto snapshot = [&] {
    Harness h(3, prof_config(/*spans=*/true));
    const FunctionId fn = h.functions.register_simple("t", us(1), 1.0);
    const DcrStats stats =
        h.runtime.execute(fuzz::materialize_loop(program, fn, /*use_trace=*/true));
    EXPECT_TRUE(stats.completed);
    // Volatile fields kept: even the time-valued counters must reproduce.
    return snapshot_of(h, /*zero_volatile=*/false);
  };
  const std::string a = snapshot();
  const std::string b = snapshot();
  EXPECT_EQ(a, b);
  EXPECT_TRUE(prof::parse_json(a).ok());
}

// -------------------------------------------------------- prof-vs-spy check

// Acceptance criterion: the profiler's online ledger reproduces the
// fence/elision counts the spy trace (the offline verifier's input) records
// for the same run.
TEST(ProfMatchesSpy, FenceAndElisionCountsAgree) {
  Harness h(8, prof_config(/*spans=*/true, /*trace=*/true));
  StencilConfig scfg{.cells_per_tile = 64, .tiles = 16, .steps = 4};
  scfg.use_trace = true;
  const DcrStats stats = run_stencil(h, scfg);
  ASSERT_TRUE(stats.completed);
  const spy::Trace* trace = h.runtime.trace();
  ASSERT_NE(trace, nullptr);
  std::uint64_t spy_issued = 0, spy_elided = 0;
  for (const spy::CoarseDepRecord& d : trace->coarse_deps) {
    (d.elided ? spy_elided : spy_issued)++;
  }
  const prof::Counters& g = h.prof().global();
  EXPECT_EQ(g.get(prof::GlobalCounter::FencesIssued), spy_issued);
  EXPECT_EQ(g.get(prof::GlobalCounter::FencesElided), spy_elided);
  EXPECT_EQ(g.get(prof::GlobalCounter::FenceDecisions), spy_issued + spy_elided);
  // And the trace itself is clean (elision audit, graph ≡ DEPseq, races).
  const spy::VerifyReport report = spy::verify(*trace);
  EXPECT_TRUE(report.ok()) << report.summary();
}

// ---------------------------------------------------------- golden snapshot

TEST(ProfGolden, StencilCounterSnapshot) {
  Harness h(8, prof_config(/*spans=*/true));
  StencilConfig scfg{.cells_per_tile = 4, .tiles = 8, .steps = 3};
  scfg.use_trace = true;
  ASSERT_TRUE(run_stencil(h, scfg).completed);
  // Volatile (cost-model-derived) fields are zeroed so retuning analysis
  // costs does not churn the golden; structural counts must match exactly.
  const std::string actual = snapshot_of(h, /*zero_volatile=*/true);
  const std::string path = std::string(DCR_GOLDEN_DIR) + "/stencil_prof.json";

  const char* update = std::getenv("DCR_UPDATE_GOLDEN");
  if (update != nullptr && std::string(update) != "" && std::string(update) != "0") {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    std::printf("[golden] regenerated %s\n", path.c_str());
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << "; generate with DCR_UPDATE_GOLDEN=1";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(want.str(), actual)
      << "counter snapshot diverges from " << path
      << " (intentional change? regenerate with DCR_UPDATE_GOLDEN=1)";
}

// -------------------------------------------------------------- seed audit

// Every (label, stream) pair used by a fuzz suite in tests/.  A collision
// would make two suites sweep the same program space and silently halve
// coverage; keep this list in sync with tests/README.md.
TEST(SeedAudit, AllSuiteLabelsProduceDistinctSeeds) {
  const char* labels[] = {"spy",        "faults", "faults-plan", "template",
                          "prof",       "prof-plan", "scope",    "scope-plan",
                          "scope-threads", "sdc",  "statics", "exec",
                          "exec-loop",  "exec-noelide", "exec-ledger",
                          "trace_id",   "trace_id-faults", "trace_id-threads"};
  constexpr std::uint64_t kIndices = 256;  // superset of every suite's range
  std::set<std::uint64_t> seen;
  for (const char* label : labels) {
    for (std::uint64_t i = 0; i < kIndices; ++i) {
      const std::uint64_t seed = fuzz::seed_for_label(label, i);
      EXPECT_TRUE(seen.insert(seed).second)
          << "seed collision: label '" << label << "' index " << i;
    }
  }
  EXPECT_EQ(seen.size(), std::size(labels) * kIndices);
}

// ------------------------------------------------ profile-on/off fuzz sweep

// 100 label-seeded loop programs (templates on) run under fault injection
// with profiling on and off.  Profiling is host-side only, so the on/off
// pair must be indistinguishable in virtual time: identical makespan,
// identical counter snapshot, same realized partial order — and both match
// the fault-free reference graph.  Counter invariants must survive the
// recovery-epoch bump.
class ProfFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProfFuzz, ProfilingNeverPerturbsExecution) {
  const std::uint64_t seed = GetParam();
  Philox4x32 rng(fuzz::seed_for_label("prof", seed), /*stream=*/11);
  const fuzz::LoopDcrProgram program = fuzz::generate_loop(rng, /*tiles=*/6);
  const std::size_t nodes = 3;

  // Fault-free reference: graph + makespan (profiled; the spy sweep in
  // ProfMatchesSpy covers trace verification, keep the fuzz body lean).
  SimTime fault_free_makespan = 0;
  rt::TaskGraph reference;
  {
    Harness h(nodes, prof_config(/*spans=*/true, /*trace=*/false, /*graph=*/true));
    const FunctionId fn = h.functions.register_simple("t", us(1), 1.0);
    const DcrStats stats =
        h.runtime.execute(fuzz::materialize_loop(program, fn, /*use_trace=*/true));
    ASSERT_TRUE(stats.completed) << "seed " << seed << ": " << stats.abort_message;
    expect_counter_invariants(h, stats);
    fault_free_makespan = stats.makespan;
    reference = h.runtime.realized_graph().transitive_closure();
  }
  ASSERT_TRUE(reference.is_acyclic());

  // Same program under the same fault plan (drops + one mid-run crash),
  // once with profiling off and once with it on.
  auto faulted = [&](bool profile, DcrStats* stats_out, std::string* snap_out) {
    sim::FaultConfig fcfg;
    fcfg.seed = fuzz::seed_for_label("prof-plan", seed);
    fcfg.drop_rate = 0.005;
    const NodeId victim(static_cast<std::uint32_t>(1 + seed % (nodes - 1)));
    fcfg.crashes.push_back({victim, fault_free_makespan * (1 + seed % 3) / 4});

    sim::Machine machine(cluster(nodes));
    sim::FaultPlan plan(fcfg);
    machine.install_faults(plan);
    FunctionRegistry functions;
    DcrRuntime rt(machine, functions,
                  prof_config(profile, /*trace=*/false, /*graph=*/true));
    const FunctionId fn = functions.register_simple("t", us(1), 1.0);
    *stats_out = rt.execute(fuzz::materialize_loop(program, fn, /*use_trace=*/true));
    ASSERT_TRUE(stats_out->completed)
        << "seed " << seed << " profile=" << profile << ": "
        << stats_out->abort_message;
    {
      std::ostringstream os;
      rt.profiler().write_snapshot_json(os, /*zero_volatile=*/false);
      *snap_out = os.str();
    }
    EXPECT_TRUE(
        reference.same_partial_order(rt.realized_graph().transitive_closure()))
        << "seed " << seed << " profile=" << profile;
    // Invariants across the recovery-epoch bump: a replacement shard
    // re-closes windows during fast-forward, but the ledgers stay balanced.
    const prof::Counters& g = rt.profiler().global();
    EXPECT_EQ(g.get(prof::GlobalCounter::FencesIssued) +
                  g.get(prof::GlobalCounter::FencesElided),
              g.get(prof::GlobalCounter::FenceDecisions))
        << "seed " << seed;
    for (std::uint32_t s = 0; s < rt.profiler().num_shards(); ++s) {
      const prof::Counters& pc = rt.profiler().shard(s);
      EXPECT_EQ(pc.get(prof::Counter::TemplateWindowHits) +
                    pc.get(prof::Counter::TemplateWindowMisses),
                pc.get(prof::Counter::WindowsClosed))
          << "seed " << seed << " shard " << s;
    }
    EXPECT_EQ(g.get(prof::GlobalCounter::Recoveries), 1u) << "seed " << seed;
    EXPECT_GE(g.get(prof::GlobalCounter::RecoveryEpochs), 1u) << "seed " << seed;
  };

  DcrStats stats_off, stats_on;
  std::string snap_off, snap_on;
  faulted(/*profile=*/false, &stats_off, &snap_off);
  faulted(/*profile=*/true, &stats_on, &snap_on);
  EXPECT_EQ(stats_off.makespan, stats_on.makespan) << "seed " << seed;
  // Counters are a pure function of the (deterministic) execution; the
  // profile knob only gates span recording.
  EXPECT_EQ(snap_off, snap_on) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfFuzz, ::testing::Range<std::uint64_t>(0, 100));

}  // namespace
}  // namespace dcr::core
