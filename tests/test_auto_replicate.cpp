// Tests for the automatic replication heuristic (the paper's §4 future-work
// knob), the full-physics Pennant cycle, and 2-D grid partitioning.
#include <gtest/gtest.h>

#include "apps/pennant.hpp"
#include "apps/stencil.hpp"
#include "dcr/auto_replicate.hpp"
#include "dcr/runtime.hpp"

namespace dcr {
namespace {

// ------------------------------------------------------- auto-replication

core::OpStreamProfile stencil_like_profile() {
  core::OpStreamProfile p;
  p.ops_per_iteration = 3;                  // three group launches per step
  p.points_per_op = 1;                      // one tile per node (weak scaling)
  p.compute_per_node_per_iter = ms(3);      // three 1 ms tasks
  p.fences_per_iteration = 2;
  return p;
}

TEST(AutoReplicate, SmallMachinesStayCentralized) {
  const auto d = core::decide_replication(stencil_like_profile(), 2);
  EXPECT_FALSE(d.replicate);
  EXPECT_LT(d.central_analysis_per_iter, ms(1));
}

TEST(AutoReplicate, LargeMachinesReplicate) {
  const auto d = core::decide_replication(stencil_like_profile(), 512);
  EXPECT_TRUE(d.replicate);
  EXPECT_GT(d.central_analysis_per_iter, d.dcr_analysis_per_node_per_iter);
}

TEST(AutoReplicate, CrossoverIsMonotonic) {
  const auto profile = stencil_like_profile();
  bool replicated = false;
  for (std::size_t n : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    const auto d = core::decide_replication(profile, n);
    // Once the heuristic flips to replication it must stay there.
    EXPECT_TRUE(!replicated || d.replicate) << n;
    replicated = replicated || d.replicate;
  }
  EXPECT_TRUE(replicated);
  const auto d = core::decide_replication(profile, 1);
  EXPECT_GT(d.crossover_nodes, 1u);
  EXPECT_LT(d.crossover_nodes, 1u << 12);
}

TEST(AutoReplicate, FasterTasksReplicateEarlier) {
  auto crossover = [](SimTime compute) {
    core::OpStreamProfile p = stencil_like_profile();
    p.compute_per_node_per_iter = compute;
    return core::decide_replication(p, 1).crossover_nodes;
  };
  EXPECT_LT(crossover(us(100)), crossover(ms(10)));
}

TEST(AutoReplicate, ProfileFromMeasuredRun) {
  // Profile a small run, then ask the heuristic about scale-out.
  sim::Machine machine({.num_nodes = 2,
                        .compute_procs_per_node = 1,
                        .network = {.alpha = us(1), .ns_per_byte = 0.1}});
  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 50.0);
  core::DcrRuntime rt(machine, functions);
  const std::size_t steps = 10;
  const auto stats = rt.execute(
      apps::make_stencil_app({.cells_per_tile = 20000, .tiles = 2, .steps = steps}, fns));
  ASSERT_TRUE(stats.completed);
  const auto profile = core::OpStreamProfile::from_stats(stats, 2, steps);
  EXPECT_GT(profile.ops_per_iteration, 0.0);
  EXPECT_GT(profile.compute_per_node_per_iter, 0u);
  // At some machine size the measured workload wants replication.
  const auto d = core::decide_replication(profile, 4096);
  EXPECT_TRUE(d.replicate);
}

// ------------------------------------------------- full-physics Pennant

TEST(PennantFull, TwelveLaunchCycleRuns) {
  sim::Machine machine({.num_nodes = 4,
                        .compute_procs_per_node = 1,
                        .network = {.alpha = us(1), .ns_per_byte = 0.1}});
  core::FunctionRegistry functions;
  const auto fns = apps::register_pennant_functions(functions, 1.0);
  core::DcrRuntime rt(machine, functions);
  apps::PennantConfig cfg{.zones_per_piece = 1000, .pieces = 8, .cycles = 4};
  cfg.full_physics = true;
  const auto stats = rt.execute(apps::make_pennant_app(cfg, fns));
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  // 11 launches/cycle (10 physics + dt) x 8 pieces x 4 cycles.
  EXPECT_EQ(stats.point_tasks_launched, 11u * 8u * 4u);
  // QCS + geometry read shared halos; corner forces reduce across pieces.
  EXPECT_GT(stats.fences_inserted, 0u);
}

TEST(PennantFull, FullPhysicsCostsMoreThanProxy) {
  auto makespan = [](bool full) {
    sim::Machine machine({.num_nodes = 4,
                          .compute_procs_per_node = 1,
                          .network = {.alpha = us(1), .ns_per_byte = 0.1}});
    core::FunctionRegistry functions;
    const auto fns = apps::register_pennant_functions(functions, 1.0);
    core::DcrRuntime rt(machine, functions);
    apps::PennantConfig cfg{.zones_per_piece = 5000, .pieces = 4, .cycles = 4};
    cfg.full_physics = full;
    return rt.execute(apps::make_pennant_app(cfg, fns)).makespan;
  };
  EXPECT_GT(makespan(true), makespan(false));
}

// -------------------------------------------------- 2-D grid partitioning

TEST(GridPartition, TilesCoverDomainDisjointly) {
  rt::RegionForest forest;
  FieldSpaceId fs = forest.create_field_space();
  RegionTreeId tree = forest.create_tree(rt::Rect::r2(0, 99, 0, 59), fs);
  const PartitionId grid = forest.partition_grid(forest.root(tree), 4, 3);
  ASSERT_EQ(forest.num_subregions(grid), 12u);
  EXPECT_TRUE(forest.is_disjoint(grid));
  std::uint64_t vol = 0;
  for (std::uint64_t c = 0; c < 12; ++c) {
    vol += forest.bounds(forest.subregion(grid, c)).volume();
  }
  EXPECT_EQ(vol, 100u * 60u);
  // Row-major coloring: color 1 is the second tile along x.
  EXPECT_EQ(forest.bounds(forest.subregion(grid, 0)), rt::Rect::r2(0, 24, 0, 19));
  EXPECT_EQ(forest.bounds(forest.subregion(grid, 1)), rt::Rect::r2(25, 49, 0, 19));
  EXPECT_EQ(forest.bounds(forest.subregion(grid, 4)), rt::Rect::r2(0, 24, 20, 39));
}

TEST(GridPartition, HaloVariantAliasesAllFourSides) {
  rt::RegionForest forest;
  FieldSpaceId fs = forest.create_field_space();
  RegionTreeId tree = forest.create_tree(rt::Rect::r2(0, 99, 0, 99), fs);
  const PartitionId ghost = forest.partition_grid(forest.root(tree), 2, 2, /*halo=*/2);
  EXPECT_FALSE(forest.is_disjoint(ghost));
  // Interior tile (color 3 = x-hi, y-hi) extends into both neighbours.
  EXPECT_EQ(forest.bounds(forest.subregion(ghost, 3)), rt::Rect::r2(48, 99, 48, 99));
  // Corner tile is clamped to the domain.
  EXPECT_EQ(forest.bounds(forest.subregion(ghost, 0)), rt::Rect::r2(0, 51, 0, 51));
}

TEST(GridPartition, TwoDStencilRunsOnGridTiles) {
  sim::Machine machine({.num_nodes = 4,
                        .compute_procs_per_node = 1,
                        .network = {.alpha = us(1), .ns_per_byte = 0.1}});
  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  core::DcrRuntime rt(machine, functions);
  apps::StencilConfig cfg{.cells_per_tile = 50, .tiles = 2, .steps = 3, .dims = 2,
                          .width = 50, .tiles_y = 2};
  const auto stats = rt.execute(apps::make_stencil_app(cfg, fns));
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  EXPECT_EQ(stats.point_tasks_launched, 4u * 3u * 3u);  // 2x2 tiles, 3 launches, 3 steps
  EXPECT_GT(stats.bytes_moved, 0u);  // 2-D halos actually move
}

TEST(GridPartition, SquareFactorsAreNearSquare) {
  for (std::size_t n : {1u, 2u, 4u, 6u, 12u, 64u, 100u, 512u}) {
    const auto [a, b] = apps::square_factors(n);
    EXPECT_EQ(a * b, n);
    EXPECT_LE(b, a);
    EXPECT_LE(a / b, n == 2 ? 2u : 4u) << n;  // reasonably square
  }
}

}  // namespace
}  // namespace dcr
