// Static interference analysis (src/statics): affine projection IR units,
// prover verdicts + verdict cache, registration-time symbolic validation
// (including the abort-on-mismatch death test), the launch-site lint, and
// runtime integration — statics on/off must realize the same task graph with
// a strictly cheaper fine stage, verdicts must survive crash recovery, and a
// 100-seed statics-on/off fuzz sweep (labelled fuzz) is spy-verified for
// graph equivalence with the enumerated oracle armed.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "apps/stencil.hpp"
#include "common/philox.hpp"
#include "dcr/runtime.hpp"
#include "dcr_fuzz_programs.hpp"
#include "prof/counters.hpp"
#include "sim/fault.hpp"
#include "sim/machine.hpp"
#include "spy/trace.hpp"
#include "spy/verify.hpp"
#include "statics/affine.hpp"
#include "statics/lint.hpp"
#include "statics/prover.hpp"

namespace dcr::core {
namespace {

using apps::StencilConfig;
using apps::make_stencil_app;
using apps::register_stencil_functions;
using statics::AffineProjection;
using statics::InterferenceProver;
using statics::LaunchReq;
using statics::Verdict;

sim::MachineConfig cluster(std::size_t nodes) {
  return {.num_nodes = nodes,
          .compute_procs_per_node = 1,
          .network = {.alpha = us(1), .ns_per_byte = 0.1, .local_latency = ns(50)}};
}

// A ColorFn that evaluates the symbolic form concretely — the honest way to
// register a projection whose closed form IS its definition.  Only valid for
// maps total on every domain (all-wrap axes).
rt::ProjectionRegistry::ColorFn color_of(const AffineProjection& sym) {
  return [sym](const rt::Point& p, const rt::Rect& domain) {
    const auto c = statics::eval_color(sym, domain, p);
    DCR_CHECK(c.has_value());
    return *c;
  };
}

// ------------------------------------------------------------ affine IR units

TEST(Affine, IdentityMatchesLinearizeEverywhere) {
  const AffineProjection id = AffineProjection::identity();
  for (const rt::Rect& d : statics::sample_domains()) {
    for (std::uint64_t i = 0; i < d.volume(); ++i) {
      const rt::Point p = rt::delinearize(d, i);
      const auto c = statics::eval_color(id, d, p);
      ASSERT_TRUE(c.has_value());
      EXPECT_EQ(*c, rt::linearize(d, p));
    }
  }
}

TEST(Affine, WrappedShiftIsARing) {
  const AffineProjection s = AffineProjection::shift1d(1);
  const rt::Rect d = rt::Rect::r1(0, 7);
  for (std::int64_t i = 0; i < 8; ++i) {
    rt::Point p = rt::Point::p1(i);
    EXPECT_EQ(statics::eval_color(s, d, p), static_cast<std::uint64_t>((i + 1) % 8));
  }
  // Offset domains normalize before shifting.
  const rt::Rect off = rt::Rect::r1(-3, 4);
  EXPECT_EQ(statics::eval_color(s, off, rt::Point::p1(4)), 0u);
}

TEST(Affine, UnwrappedShiftUndefinedAtTheEdge) {
  const AffineProjection s = AffineProjection::shift1d(1, /*wrap=*/false);
  const rt::Rect d = rt::Rect::r1(0, 7);
  EXPECT_EQ(statics::eval_color(s, d, rt::Point::p1(3)), 4u);
  EXPECT_FALSE(statics::eval_color(s, d, rt::Point::p1(7)).has_value());
  EXPECT_FALSE(statics::range_ok(s, d, 8));  // partial maps are never range_ok
}

TEST(Affine, TransposeSwapsAxes) {
  const AffineProjection t = AffineProjection::transpose2d();
  const rt::Rect d = rt::Rect::r2(0, 3, 0, 3);
  const rt::Point p = rt::Point::p2(1, 2);
  const rt::Point swapped = rt::Point::p2(2, 1);
  EXPECT_EQ(statics::eval_color(t, d, p), rt::linearize(d, swapped));
  EXPECT_TRUE(statics::injective(t, d));
  EXPECT_TRUE(statics::range_ok(t, d, 16));
}

TEST(Affine, WrapCycleArithmetic) {
  EXPECT_EQ(statics::detail::wrap_cycle(1, 8), 8);
  EXPECT_EQ(statics::detail::wrap_cycle(2, 8), 4);
  EXPECT_EQ(statics::detail::wrap_cycle(3, 8), 8);   // coprime: full cycle
  EXPECT_EQ(statics::detail::wrap_cycle(6, 8), 4);   // gcd(6,8)=2
  EXPECT_EQ(statics::detail::wrap_cycle(0, 8), 1);   // constant map
  EXPECT_EQ(statics::detail::wrap_cycle(8, 8), 1);   // scale == modulus
  EXPECT_EQ(statics::detail::positive_mod(-3, 8), 5);
}

TEST(Affine, InjectivityRespectsWrapCycles) {
  const rt::Rect d8 = rt::Rect::r1(0, 7);
  EXPECT_TRUE(statics::injective(AffineProjection::identity(), d8));
  EXPECT_TRUE(statics::injective(AffineProjection::shift1d(5), d8));
  // Coprime stride visits all 8 residues; even stride collapses 0 and 4.
  EXPECT_TRUE(statics::injective(AffineProjection::strided1d(3), d8));
  EXPECT_FALSE(statics::injective(AffineProjection::strided1d(2), d8));
  EXPECT_FALSE(statics::injective(AffineProjection::strided1d(0), d8));
  // Non-wrapped zero scale is constant, any other scale is injective.
  EXPECT_FALSE(statics::injective(AffineProjection::strided1d(0, 0, false), d8));
  // Repeated sources are not a permutation: (i, j) -> (i, i).
  AffineProjection dup = AffineProjection::identity();
  dup.axes[1].source = 0;
  EXPECT_FALSE(statics::injective(dup, rt::Rect::r2(0, 3, 0, 3)));
}

TEST(Affine, EmptyAndSinglePointDomainsAreTriviallyFine) {
  const rt::Rect empty = rt::Rect::empty();
  const rt::Rect one = rt::Rect::r1(3, 3);
  const AffineProjection collapse = AffineProjection::strided1d(0);
  EXPECT_TRUE(statics::injective(collapse, empty));
  EXPECT_TRUE(statics::injective(collapse, one));  // one point cannot collide
  EXPECT_TRUE(statics::range_ok(collapse, empty, 0));
  EXPECT_EQ(statics::colors_covered(collapse, empty), 0u);
  EXPECT_EQ(statics::colors_covered(collapse, one), 1u);
  EXPECT_TRUE(statics::ranges_disjoint(collapse, empty, collapse, empty));
}

TEST(Affine, ColorsCoveredCountsDistinctImages) {
  const rt::Rect d8 = rt::Rect::r1(0, 7);
  EXPECT_EQ(statics::colors_covered(AffineProjection::identity(), d8), 8u);
  EXPECT_EQ(statics::colors_covered(AffineProjection::strided1d(0), d8), 1u);
  EXPECT_EQ(statics::colors_covered(AffineProjection::strided1d(2), d8), 4u);
  EXPECT_EQ(statics::colors_covered(AffineProjection::transpose2d(),
                                    rt::Rect::r2(0, 3, 0, 1)),
            8u);
}

// The satellite case: modular wraps that *look* shifted apart may still
// overlap — shift1d(+1) and shift1d(-7) are the same map on an 8-ring, and
// residue separation must refuse to call them disjoint.
TEST(Affine, ModularWrapOverlapIsNotDisjoint) {
  const rt::Rect d8 = rt::Rect::r1(0, 7);
  const AffineProjection plus1 = AffineProjection::shift1d(1);
  const AffineProjection minus7 = AffineProjection::shift1d(-7);
  EXPECT_TRUE(statics::equivalent(plus1, minus7, d8));
  EXPECT_FALSE(statics::ranges_disjoint(plus1, d8, minus7, d8));
  // Unit strides cover every residue: no shifted pair is ever disjoint.
  EXPECT_FALSE(
      statics::ranges_disjoint(plus1, d8, AffineProjection::shift1d(5), d8));
}

TEST(Affine, ResidueSeparationProvesInterleavingsApart) {
  const rt::Rect d8 = rt::Rect::r1(0, 7);
  // Red/black: even targets vs odd targets, stride 2 on an 8-ring.
  const AffineProjection even = AffineProjection::strided1d(2, 0);
  const AffineProjection odd = AffineProjection::strided1d(2, 1);
  EXPECT_TRUE(statics::ranges_disjoint(even, d8, odd, d8));
  EXPECT_FALSE(statics::ranges_disjoint(even, d8, even, d8));
  // Constant maps onto different colors.
  EXPECT_TRUE(statics::ranges_disjoint(AffineProjection::strided1d(0, 2), d8,
                                       AffineProjection::strided1d(0, 5), d8));
  // Non-wrapped constants separate by interval.
  EXPECT_TRUE(statics::ranges_disjoint(AffineProjection::strided1d(0, 2, false), d8,
                                       AffineProjection::strided1d(0, 5, false), d8));
  // Mismatched grids are never comparable.
  EXPECT_FALSE(statics::ranges_disjoint(even, d8, odd, rt::Rect::r1(0, 5)));
}

TEST(Affine, EquivalenceComparesModuloTheExtent) {
  const rt::Rect d8 = rt::Rect::r1(0, 7);
  EXPECT_TRUE(statics::equivalent(AffineProjection::shift1d(1),
                                  AffineProjection::shift1d(9), d8));
  EXPECT_FALSE(statics::equivalent(AffineProjection::shift1d(1),
                                   AffineProjection::shift1d(2), d8));
  EXPECT_FALSE(statics::equivalent(AffineProjection::shift1d(1, false),
                                   AffineProjection::shift1d(1, true), d8));
  EXPECT_TRUE(statics::equivalent(AffineProjection::identity(),
                                  AffineProjection::identity(), rt::Rect::empty()));
}

// ------------------------------------------------------- fields_intersect

TEST(FieldsIntersect, MaskFastPathAndEdgeCases) {
  const auto f = [](std::initializer_list<std::uint32_t> ids) {
    std::vector<FieldId> v;
    for (auto i : ids) v.push_back(FieldId(i));
    return v;
  };
  EXPECT_FALSE(rt::fields_intersect(f({}), f({1, 2})));
  EXPECT_FALSE(rt::fields_intersect(f({1, 2}), f({})));
  EXPECT_TRUE(rt::fields_intersect(f({3}), f({3})));
  EXPECT_FALSE(rt::fields_intersect(f({3}), f({4})));
  EXPECT_TRUE(rt::fields_intersect(f({1, 2, 3}), f({3, 4})));
  EXPECT_FALSE(rt::fields_intersect(f({1, 2}), f({3, 4})));
  EXPECT_TRUE(rt::fields_intersect(f({0, 63}), f({63})) );
}

TEST(FieldsIntersect, LargeIdsFallBackToExactScan) {
  const auto f = [](std::initializer_list<std::uint32_t> ids) {
    std::vector<FieldId> v;
    for (auto i : ids) v.push_back(FieldId(i));
    return v;
  };
  EXPECT_TRUE(rt::fields_intersect(f({70, 1}), f({2, 70})));
  EXPECT_FALSE(rt::fields_intersect(f({70, 1}), f({2, 65})));
  EXPECT_TRUE(rt::fields_intersect(f({70, 3}), f({3, 65})));  // mask still hits
  EXPECT_FALSE(rt::fields_intersect(f({64, 100}), f({65, 101})));
}

// ----------------------------------------------- registration-time validation

TEST(ProjectionRegistry, SymbolicRegistrationRoundTrips) {
  rt::RegionForest forest;
  const FieldSpaceId fs = forest.create_field_space();
  forest.allocate_field(fs, 8, "f");
  const RegionTreeId tree = forest.create_tree(rt::Rect::r1(0, 63), fs);
  const PartitionId part = forest.partition_equal(forest.root(tree), 8);

  rt::ProjectionRegistry projs;
  const AffineProjection sym = AffineProjection::shift1d(1);
  const ProjectionId id = projs.register_projection(color_of(sym), sym);
  ASSERT_NE(projs.symbolic(id), nullptr);
  EXPECT_EQ(*projs.symbolic(id), sym);
  EXPECT_EQ(projs.symbolic(rt::ProjectionRegistry::identity()) != nullptr, true);

  // The synthesized opaque fn agrees with the closed form.
  const rt::Rect d = rt::Rect::r1(0, 7);
  EXPECT_EQ(projs.apply(id, forest, part, rt::Point::p1(7), d),
            forest.subregion(part, 0));
  EXPECT_EQ(projs.apply(id, forest, part, rt::Point::p1(2), d),
            forest.subregion(part, 3));
}

TEST(ProjectionRegistryDeathTest, MismatchedSymbolicFormAbortsLoudly) {
  rt::ProjectionRegistry projs;
  // Claim "shift by one" symbolically while the concrete fn is the identity:
  // registration must refuse the lie before any launch can trust it.
  EXPECT_DEATH(projs.register_projection(
                   [](const rt::Point& p, const rt::Rect& domain) {
                     return rt::linearize(domain, p);
                   },
                   AffineProjection::shift1d(1)),
               "symbolic projection mismatch");
}

// ------------------------------------------------------------ prover verdicts

// 64 cells, 8 disjoint tiles, plus a halo (aliased) partition — the stencil
// shape the paper's Figure 8 uses.
struct ProverFixture {
  rt::RegionForest forest;
  rt::ProjectionRegistry projs;
  IndexSpaceId cells;
  PartitionId owned, ghost;
  ProjectionId shift, interleave_even, interleave_odd, collapse;

  ProverFixture() {
    const FieldSpaceId fs = forest.create_field_space();
    forest.allocate_field(fs, 8, "f");
    const RegionTreeId tree = forest.create_tree(rt::Rect::r1(0, 63), fs);
    cells = forest.root(tree);
    owned = forest.partition_equal(cells, 8);
    ghost = forest.partition_with_halo(cells, 8, 1);
    shift = projs.register_projection(color_of(AffineProjection::shift1d(1)),
                                      AffineProjection::shift1d(1));
    interleave_even =
        projs.register_projection(color_of(AffineProjection::strided1d(0, 0)),
                                  AffineProjection::strided1d(0, 0));
    interleave_odd =
        projs.register_projection(color_of(AffineProjection::strided1d(0, 1)),
                                  AffineProjection::strided1d(0, 1));
    collapse = projs.register_projection(color_of(AffineProjection::strided1d(0)),
                                         AffineProjection::strided1d(0));
  }

  LaunchReq req(PartitionId part, ProjectionId proj, const rt::Rect& domain,
                rt::Privilege priv, rt::ReductionOpId redop = rt::kNoRedop) const {
    LaunchReq r;
    r.is_index = true;
    r.partition = part;
    r.projection = proj;
    r.domain = domain;
    r.sharding = ShardingId(0);
    r.privilege = priv;
    r.redop = redop;
    return r;
  }
};

TEST(Prover, LaunchVerdictsAcrossThePrivilegeLattice) {
  ProverFixture fx;
  InterferenceProver prover(fx.forest, fx.projs);
  const rt::Rect d = rt::Rect::r1(0, 7);
  const ProjectionId ident = rt::ProjectionRegistry::identity();

  EXPECT_EQ(prover.resolve(fx.req(fx.owned, ident, d, rt::Privilege::ReadOnly)),
            Verdict::ReadOnlyBroadcast);
  EXPECT_EQ(prover.resolve(fx.req(fx.owned, ident, d, rt::Privilege::ReadWrite)),
            Verdict::PointDisjointWrites);
  EXPECT_EQ(prover.resolve(fx.req(fx.owned, fx.shift, d, rt::Privilege::WriteDiscard)),
            Verdict::PointDisjointWrites);
  // Reductions commute even through an aliasing map.
  EXPECT_EQ(prover.resolve(fx.req(fx.owned, fx.collapse, d, rt::Privilege::Reduce, 1)),
            Verdict::CommutingReduction);
  // A non-injective write map earns no proof.
  EXPECT_EQ(prover.resolve(fx.req(fx.owned, fx.collapse, d, rt::Privilege::ReadWrite)),
            Verdict::Unknown);
  // An aliased partition defeats per-point disjointness.
  EXPECT_EQ(prover.resolve(fx.req(fx.ghost, ident, d, rt::Privilege::ReadWrite)),
            Verdict::Unknown);
  // ...but reading ghosts is still a broadcast.
  EXPECT_EQ(prover.resolve(fx.req(fx.ghost, ident, d, rt::Privilege::ReadOnly)),
            Verdict::ReadOnlyBroadcast);
}

TEST(Prover, EmptyAndSinglePointLaunchesAreVacuouslyProven) {
  ProverFixture fx;
  InterferenceProver prover(fx.forest, fx.projs);
  EXPECT_EQ(prover.resolve(fx.req(fx.owned, fx.collapse, rt::Rect::empty(),
                                  rt::Privilege::ReadWrite)),
            Verdict::PointDisjointWrites);
  EXPECT_EQ(prover.resolve(fx.req(fx.owned, fx.collapse, rt::Rect::empty(),
                                  rt::Privilege::ReadOnly)),
            Verdict::ReadOnlyBroadcast);
  // One point cannot race with itself, even through a collapsing map.
  EXPECT_EQ(prover.resolve(fx.req(fx.owned, fx.collapse, rt::Rect::r1(3, 3),
                                  rt::Privilege::ReadWrite)),
            Verdict::PointDisjointWrites);
}

TEST(Prover, RegionFormAndSingleTasks) {
  ProverFixture fx;
  InterferenceProver prover(fx.forest, fx.projs);
  LaunchReq region;  // partition invalid: every point names the same region
  region.is_index = true;
  region.domain = rt::Rect::r1(0, 7);
  region.privilege = rt::Privilege::ReadOnly;
  EXPECT_EQ(prover.resolve(region), Verdict::ReadOnlyBroadcast);
  region.privilege = rt::Privilege::Reduce;
  region.redop = 1;
  EXPECT_EQ(prover.resolve(region), Verdict::CommutingReduction);
  region.privilege = rt::Privilege::ReadWrite;
  EXPECT_EQ(prover.resolve(region), Verdict::Unknown);  // 8 writers, one region

  LaunchReq single;  // a non-index task carries no projection form
  single.is_index = false;
  EXPECT_EQ(prover.resolve(single), Verdict::Unknown);
}

TEST(Prover, RangeEscapeWithholdsTheProof) {
  ProverFixture fx;
  const AffineProjection part_shift = AffineProjection::shift1d(1, /*wrap=*/false);
  // Registration only compares where the symbolic form is defined, so a
  // partial (non-wrapped) shift validates; the prover must then refuse it on
  // a full-width domain because the edge point escapes the color grid.
  const ProjectionId id = fx.projs.register_projection(
      [part_shift](const rt::Point& p, const rt::Rect& domain) {
        return statics::eval_color(part_shift, domain, p).value_or(0);
      },
      part_shift);
  InterferenceProver prover(fx.forest, fx.projs);
  EXPECT_EQ(prover.resolve(fx.req(fx.owned, id, rt::Rect::r1(0, 7),
                                  rt::Privilege::ReadOnly)),
            Verdict::Unknown);
}

TEST(Prover, PairClassification) {
  ProverFixture fx;
  InterferenceProver prover(fx.forest, fx.projs);
  const rt::Rect d = rt::Rect::r1(0, 7);
  const ProjectionId ident = rt::ProjectionRegistry::identity();

  // Same domain, same injective map: points only meet themselves.
  EXPECT_EQ(prover.classify(fx.req(fx.owned, ident, d, rt::Privilege::ReadWrite),
                            fx.req(fx.owned, ident, d, rt::Privilege::ReadWrite)),
            Verdict::PointwiseAligned);
  // Identity vs ring shift: both proven, not aligned, not disjoint — the
  // coarse fence/elision verdict carries the pair.
  EXPECT_EQ(prover.classify(fx.req(fx.owned, ident, d, rt::Privilege::ReadWrite),
                            fx.req(fx.owned, fx.shift, d, rt::Privilege::ReadOnly)),
            Verdict::CoarseOrdered);
  // Any Unknown side poisons the pair.
  EXPECT_EQ(prover.classify(fx.req(fx.ghost, ident, d, rt::Privilege::ReadWrite),
                            fx.req(fx.owned, ident, d, rt::Privilege::ReadOnly)),
            Verdict::Unknown);
}

TEST(Prover, CrossLaunchDisjointUpgrade) {
  ProverFixture fx;
  InterferenceProver prover(fx.forest, fx.projs);
  const rt::Rect d = rt::Rect::r1(0, 7);
  // Even/odd constant interleave: residue separation proves the color sets
  // apart, for broadcasts and commuting reductions alike.
  EXPECT_EQ(prover.classify(
                fx.req(fx.owned, fx.interleave_even, d, rt::Privilege::ReadOnly),
                fx.req(fx.owned, fx.interleave_odd, d, rt::Privilege::ReadOnly)),
            Verdict::CrossLaunchDisjoint);
  EXPECT_EQ(prover.classify(
                fx.req(fx.owned, fx.interleave_even, d, rt::Privilege::Reduce, 1),
                fx.req(fx.owned, fx.interleave_odd, d, rt::Privilege::Reduce, 1)),
            Verdict::CrossLaunchDisjoint);
  // Vacuous launches are disjoint from everything, even as writers.
  EXPECT_EQ(prover.classify(fx.req(fx.owned, fx.shift, rt::Rect::empty(),
                                   rt::Privilege::ReadWrite),
                            fx.req(fx.owned, fx.shift, rt::Rect::empty(),
                                   rt::Privilege::ReadWrite)),
            Verdict::CrossLaunchDisjoint);
  // On a 1-point grid every wrapped map collapses to color 0: the two
  // "different" constants become equivalent, not disjoint.
  const rt::Rect one = rt::Rect::r1(0, 0);
  EXPECT_EQ(
      prover.classify(fx.req(fx.owned, fx.interleave_even, one, rt::Privilege::ReadWrite),
                      fx.req(fx.owned, fx.interleave_odd, one, rt::Privilege::ReadWrite)),
      Verdict::PointwiseAligned);
}

TEST(Prover, VerdictCacheFlushesOnForestMutationOnly) {
  ProverFixture fx;
  InterferenceProver prover(fx.forest, fx.projs);
  const LaunchReq r = fx.req(fx.owned, rt::ProjectionRegistry::identity(),
                             rt::Rect::r1(0, 7), rt::Privilege::ReadWrite);
  EXPECT_EQ(prover.resolve(r), Verdict::PointDisjointWrites);
  EXPECT_EQ(prover.resolve(r), Verdict::PointDisjointWrites);
  EXPECT_EQ(prover.stats().cache_hits, 1u);
  EXPECT_EQ(prover.stats().cache_flushes, 0u);

  // Reshaping the forest invalidates every verdict...
  fx.forest.partition_equal(fx.cells, 4);
  EXPECT_EQ(prover.resolve(r), Verdict::PointDisjointWrites);
  EXPECT_EQ(prover.stats().cache_flushes, 1u);
  EXPECT_EQ(prover.stats().cache_hits, 1u);  // re-proved, not served stale
}

TEST(Prover, ParanoidOracleAcceptsSoundVerdicts) {
  ProverFixture fx;
  InterferenceProver prover(fx.forest, fx.projs, /*paranoid=*/true);
  const rt::Rect d = rt::Rect::r1(0, 7);
  const LaunchReq w = fx.req(fx.owned, fx.shift, d, rt::Privilege::ReadWrite);
  EXPECT_EQ(prover.resolve(w), Verdict::PointDisjointWrites);
  prover.oracle_check_launch(w);  // enumerates all 8 points, must agree
  EXPECT_EQ(prover.classify(w, w), Verdict::PointwiseAligned);
  EXPECT_GT(prover.stats().oracle_checks, 0u);
}

// ------------------------------------------------------------------- lint

TEST(Lint, FlagsTheSeededNonInjectiveWriteRace) {
  ProverFixture fx;
  statics::LaunchLedger ledger;
  ledger.note(fx.owned, fx.collapse, rt::Rect::r1(0, 7), rt::Privilege::ReadWrite,
              rt::kNoRedop);
  const auto findings = statics::lint(fx.forest, fx.projs, ledger);
  bool seen = false;
  for (const auto& f : findings) {
    if (f.kind == statics::LintKind::NonInjectiveWrite) {
      seen = true;
      EXPECT_TRUE(statics::is_race_class(f.kind));
      EXPECT_EQ(f.partition, fx.owned);
      EXPECT_NE(f.message.find("race"), std::string::npos);
    }
  }
  EXPECT_TRUE(seen) << "lint missed the seeded non-injective write";
}

TEST(Lint, FlagsWritesThroughAliasedPartitions) {
  ProverFixture fx;
  statics::LaunchLedger ledger;
  ledger.note(fx.ghost, rt::ProjectionRegistry::identity(), rt::Rect::r1(0, 7),
              rt::Privilege::ReadWrite, rt::kNoRedop);
  ledger.note(fx.owned, rt::ProjectionRegistry::identity(), rt::Rect::r1(0, 7),
              rt::Privilege::ReadWrite, rt::kNoRedop);
  const auto findings = statics::lint(fx.forest, fx.projs, ledger);
  bool aliased = false;
  for (const auto& f : findings) {
    aliased |= f.kind == statics::LintKind::AliasedWrite && f.partition == fx.ghost;
    EXPECT_NE(f.kind, statics::LintKind::NonInjectiveWrite);
  }
  EXPECT_TRUE(aliased);
}

TEST(Lint, FlagsDeadPartitionsAndOverClaims) {
  ProverFixture fx;
  statics::LaunchLedger ledger;
  // Write through the identity over a quarter of the partition: over-claim.
  ledger.note(fx.owned, rt::ProjectionRegistry::identity(), rt::Rect::r1(0, 1),
              rt::Privilege::ReadWrite, rt::kNoRedop);
  const auto findings = statics::lint(fx.forest, fx.projs, ledger);
  bool over = false, dead_ghost = false;
  for (const auto& f : findings) {
    over |= f.kind == statics::LintKind::PrivilegeOverClaim && f.partition == fx.owned;
    dead_ghost |=
        f.kind == statics::LintKind::DeadPartition && f.partition == fx.ghost;
  }
  EXPECT_TRUE(over);
  EXPECT_TRUE(dead_ghost) << "ghost partition is never launched on";
}

TEST(Lint, FlagsHotOpaqueProjectionsOnlyPastTheThreshold) {
  ProverFixture fx;
  const ProjectionId opaque = fx.projs.register_projection(
      [](const rt::RegionForest& forest, PartitionId part, const rt::Point& p,
         const rt::Rect& domain) {
        return forest.subregion(part, rt::linearize(domain, p));
      });
  statics::LaunchLedger cold, hot;
  for (int i = 0; i < 3; ++i) {
    cold.note(fx.owned, opaque, rt::Rect::r1(0, 7), rt::Privilege::ReadOnly,
              rt::kNoRedop);
  }
  for (int i = 0; i < 8; ++i) {
    hot.note(fx.owned, opaque, rt::Rect::r1(0, 7), rt::Privilege::ReadOnly,
             rt::kNoRedop);
  }
  const auto quiet = statics::lint(fx.forest, fx.projs, cold);
  const auto loud = statics::lint(fx.forest, fx.projs, hot);
  const auto count = [](const std::vector<statics::LintFinding>& fs,
                        statics::LintKind k) {
    std::size_t n = 0;
    for (const auto& f : fs) n += f.kind == k;
    return n;
  };
  EXPECT_EQ(count(quiet, statics::LintKind::OpaqueHotProjection), 0u);
  EXPECT_EQ(count(loud, statics::LintKind::OpaqueHotProjection), 1u);
  EXPECT_EQ(hot.total_launch_reqs(), 8u);
  EXPECT_EQ(hot.sites().size(), 1u);
}

// --------------------------------------------------------- runtime integration

struct StencilRun {
  DcrStats stats;
  spy::Trace trace;
  rt::TaskGraph graph;
  std::uint64_t skip_ops = 0, skip_points = 0;
  std::uint64_t fine_ns = 0, fine_points = 0, fine_ops = 0;
};

StencilRun run_stencil(bool statics_on, bool check, bool use_trace,
                       std::size_t nodes = 8, std::size_t tiles = 32,
                       sim::FaultConfig faults = {}, DcrStats* reference = nullptr) {
  sim::Machine machine(cluster(nodes));
  const bool with_faults = !faults.crashes.empty() || faults.drop_rate > 0.0;
  sim::FaultPlan plan(std::move(faults));
  if (with_faults) machine.install_faults(plan);
  FunctionRegistry functions;
  const auto fns = register_stencil_functions(functions, 1.0);
  DcrConfig cfg;
  cfg.static_analysis = statics_on;
  cfg.statics_check = check;
  cfg.record_trace = true;
  cfg.record_task_graph = true;
  DcrRuntime rt(machine, functions, cfg);
  const StencilConfig scfg{
      .cells_per_tile = 64, .tiles = tiles, .steps = 6, .use_trace = use_trace};
  StencilRun out;
  out.stats = rt.execute(make_stencil_app(scfg, fns));
  out.trace = *rt.trace();
  out.graph = rt.realized_graph().transitive_closure();
  const prof::Profiler& prof = rt.profiler();
  out.skip_ops = prof.total(prof::Counter::StaticSkipOps);
  out.skip_points = prof.total(prof::Counter::StaticSkipPoints);
  out.fine_ns = prof.total(prof::Counter::FineAnalysisNs);
  out.fine_points = prof.total(prof::Counter::FinePoints);
  out.fine_ops = prof.total(prof::Counter::FineOps);
  (void)reference;
  return out;
}

TEST(StaticsRuntime, SkipCountersFireAndStayWithinTheFineLedger) {
  const StencilRun on = run_stencil(true, false, /*use_trace=*/false);
  ASSERT_TRUE(on.stats.completed);
  EXPECT_GT(on.skip_ops, 0u);
  EXPECT_GT(on.skip_points, 0u);
  EXPECT_LE(on.skip_ops, on.fine_ops);
  // Skipped points are points the fine stage still *owns* but never walked.
  EXPECT_EQ(on.skip_points, on.stats.statics_skipped_points);
  EXPECT_GT(on.stats.statics_resolved_ops, 0u);
  EXPECT_GT(on.stats.statics_cache_hits, 0u);  // steady-state launches repeat
}

TEST(StaticsRuntime, DisabledStaticsLeaveNoTrace) {
  const StencilRun off = run_stencil(false, false, /*use_trace=*/false);
  ASSERT_TRUE(off.stats.completed);
  EXPECT_EQ(off.skip_ops, 0u);
  EXPECT_EQ(off.skip_points, 0u);
  EXPECT_EQ(off.stats.statics_resolved_ops, 0u);
  EXPECT_EQ(off.stats.statics_unresolved_ops, 0u);
  EXPECT_EQ(off.stats.statics_skipped_points, 0u);
}

// The acceptance property: identical decisions, cheaper analysis.  The graph,
// fence counts, and task counts match exactly; the fine-stage virtual cost
// drops by at least 2x on the untraced stencil.
TEST(StaticsRuntime, OnOffIdenticalGraphAtHalfTheFineCost) {
  const StencilRun on = run_stencil(true, false, /*use_trace=*/false);
  const StencilRun off = run_stencil(false, false, /*use_trace=*/false);
  ASSERT_TRUE(on.stats.completed);
  ASSERT_TRUE(off.stats.completed);
  EXPECT_TRUE(on.graph.same_partial_order(off.graph));
  std::string why;
  EXPECT_TRUE(spy::graph_equivalent(off.trace, on.trace, &why)) << why;
  EXPECT_EQ(on.stats.fences_inserted, off.stats.fences_inserted);
  EXPECT_EQ(on.stats.fences_elided, off.stats.fences_elided);
  EXPECT_EQ(on.stats.point_tasks_launched, off.stats.point_tasks_launched);
  // FinePoints tracks owned points whether or not they were enumerated; the
  // skip ledger must stay inside it.
  EXPECT_EQ(on.fine_points, off.fine_points);
  EXPECT_LE(on.skip_points, on.fine_points);
  ASSERT_GT(on.fine_ns, 0u);
  EXPECT_GE(off.fine_ns, 2 * on.fine_ns) << "static skip saved too little";
  EXPECT_LE(on.stats.makespan, off.stats.makespan);
  const spy::VerifyReport report = spy::verify(on.trace);
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(StaticsRuntime, ParanoidOracleModeCompletesCleanly) {
  const StencilRun checked = run_stencil(true, /*check=*/true, /*use_trace=*/false,
                                         /*nodes=*/4, /*tiles=*/8);
  ASSERT_TRUE(checked.stats.completed);
  EXPECT_GT(checked.skip_ops, 0u);  // verdicts survived the enumerated oracle
}

// Traced replays already charge the reduced template costs; the static skip
// must not stack a second discount on top of them.
TEST(StaticsRuntime, TracedReplaysNeverDoubleDiscount) {
  const StencilRun on = run_stencil(true, false, /*use_trace=*/true);
  const StencilRun off = run_stencil(false, false, /*use_trace=*/true);
  ASSERT_TRUE(on.stats.completed);
  ASSERT_TRUE(off.stats.completed);
  EXPECT_GT(on.stats.template_replays, 0u);
  EXPECT_GT(on.skip_ops, 0u);             // fresh (untraced) launches still skip
  EXPECT_LE(on.skip_ops, on.fine_ops);    // never counted against replayed ops
  EXPECT_TRUE(on.graph.same_partial_order(off.graph));
}

// Crash recovery bumps the template/recovery epoch but not region geometry:
// static verdicts stay valid across the failover and the healed run still
// realizes the fault-free graph.
TEST(StaticsRuntime, VerdictsSurviveCrashRecovery) {
  const StencilRun clean = run_stencil(true, false, /*use_trace=*/true,
                                       /*nodes=*/4, /*tiles=*/8);
  ASSERT_TRUE(clean.stats.completed);
  sim::FaultConfig fcfg;
  fcfg.seed = 7;
  fcfg.crashes.push_back({NodeId(1), clean.stats.makespan / 2});
  const StencilRun crashed = run_stencil(true, false, /*use_trace=*/true,
                                         /*nodes=*/4, /*tiles=*/8, fcfg);
  ASSERT_TRUE(crashed.stats.completed) << crashed.stats.abort_message;
  EXPECT_EQ(crashed.stats.recoveries, 1u);
  EXPECT_GT(crashed.skip_ops, 0u);  // statics kept firing after the failover
  EXPECT_TRUE(crashed.graph.same_partial_order(clean.graph));
}

TEST(StaticsRuntime, LedgerAndLintAreCleanOnTheStencil) {
  sim::Machine machine(cluster(4));
  FunctionRegistry functions;
  const auto fns = register_stencil_functions(functions, 1.0);
  DcrConfig cfg;
  DcrRuntime rt(machine, functions, cfg);
  const StencilConfig scfg{.cells_per_tile = 64, .tiles = 8, .steps = 4};
  ASSERT_TRUE(rt.execute(make_stencil_app(scfg, fns)).completed);
  EXPECT_GT(rt.statics_ledger().total_launch_reqs(), 0u);
  const auto findings =
      statics::lint(rt.forest(), rt.projections(), rt.statics_ledger());
  for (const auto& f : findings) {
    EXPECT_FALSE(statics::is_race_class(f.kind)) << f.message;
  }
}

// ------------------------------------------------- statics on/off fuzz sweep

// 100 fuzzed loop programs: statics must be invisible in the realized partial
// order, pass the spy verifier, and — with the enumerated oracle armed on the
// on-run — every static verdict is cross-checked point by point.
TEST(StaticsFuzz, HundredSeedOnOffSweepPreservesTheGraph) {
  for (std::uint64_t index = 0; index < 100; ++index) {
    const std::uint64_t seed = fuzz::seed_for_label("statics", index);
    Philox4x32 rng(seed, /*stream=*/17);
    const fuzz::LoopDcrProgram program = fuzz::generate_loop(rng, /*tiles=*/6);

    auto run = [&](bool statics_on) {
      sim::Machine machine(cluster(4));
      FunctionRegistry functions;
      const FunctionId fn = functions.register_simple("t", us(1), 1.0);
      DcrConfig cfg;
      cfg.static_analysis = statics_on;
      cfg.statics_check = statics_on;  // arm the enumerated oracle
      cfg.record_trace = true;
      cfg.record_task_graph = true;
      DcrRuntime rt(machine, functions, cfg);
      StencilRun out;
      out.stats = rt.execute(fuzz::materialize_loop(program, fn, /*use_trace=*/false));
      out.trace = *rt.trace();
      out.graph = rt.realized_graph().transitive_closure();
      return out;
    };
    const StencilRun on = run(true);
    const StencilRun off = run(false);
    ASSERT_TRUE(on.stats.completed) << "seed " << index;
    ASSERT_TRUE(off.stats.completed) << "seed " << index;
    EXPECT_TRUE(on.graph.same_partial_order(off.graph)) << "seed " << index;
    EXPECT_EQ(on.stats.fences_inserted, off.stats.fences_inserted) << index;
    EXPECT_EQ(on.stats.fences_elided, off.stats.fences_elided) << index;
    std::string why;
    EXPECT_TRUE(spy::graph_equivalent(off.trace, on.trace, &why))
        << "seed " << index << ": " << why;
    const spy::VerifyReport report = spy::verify(on.trace);
    EXPECT_TRUE(report.ok()) << "seed " << index << ": " << report.summary();
  }
}

}  // namespace
}  // namespace dcr::core
