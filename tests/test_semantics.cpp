// Tests for the §2 formal semantics: DEPseq, DEPrep, and the Theorem 1
// equivalence property over random programs, shardings, and interleavings.
#include <gtest/gtest.h>

#include "analysis/random_program.hpp"
#include "analysis/semantics.hpp"

namespace dcr::an {
namespace {

// The paper's Figure 1 running example: a loop launching A..F per iteration,
// with dependences B=>C and C=>F within an iteration and serial dependences
// between iterations on the same letter.
struct Fig1Program {
  AProgram program;
  Oracle oracle;

  explicit Fig1Program(std::size_t iters = 2) {
    // Tasks are numbered iter*6 + letter (A=0..F=5).  Grouping per iteration:
    // {A,B}, {C,D}, {E,F} — each group pairwise independent.
    for (std::size_t it = 0; it < iters; ++it) {
      const std::uint64_t base = it * 6;
      program.push_back({ATask{TaskId(base + 0), ShardId(0)}, ATask{TaskId(base + 1), ShardId(0)}});
      program.push_back({ATask{TaskId(base + 2), ShardId(0)}, ATask{TaskId(base + 3), ShardId(0)}});
      program.push_back({ATask{TaskId(base + 4), ShardId(0)}, ATask{TaskId(base + 5), ShardId(0)}});
    }
    oracle = [](TaskId a, TaskId b) {
      const std::uint64_t la = a.value % 6, lb = b.value % 6;
      const std::uint64_t ia = a.value / 6, ib = b.value / 6;
      if (la == lb && ia != ib) return true;        // serial per letter
      if (ia == ib && la == 1 && lb == 2) return true;  // B => C
      if (ia == ib && la == 2 && lb == 5) return true;  // C => F
      return false;
    };
  }
};

TEST(Sequential, Fig1GraphShape) {
  Fig1Program fig(2);
  const auto g = analyze_sequential(fig.program, fig.oracle);
  EXPECT_EQ(g.num_tasks(), 12u);
  EXPECT_TRUE(g.has_edge(TaskId(1), TaskId(2)));   // B1 => C1
  EXPECT_TRUE(g.has_edge(TaskId(2), TaskId(5)));   // C1 => F1
  EXPECT_TRUE(g.has_edge(TaskId(0), TaskId(6)));   // A1 => A2
  EXPECT_FALSE(g.has_edge(TaskId(0), TaskId(1)));  // A1 * B1
  EXPECT_TRUE(g.is_acyclic());
}

TEST(Sequential, EmptyProgram) {
  const auto g = analyze_sequential({}, [](TaskId, TaskId) { return true; });
  EXPECT_EQ(g.num_tasks(), 0u);
}

TEST(Sequential, IndependentGroupsProduceNoEdges) {
  AProgram p{{ATask{TaskId(0), ShardId(0)}}, {ATask{TaskId(1), ShardId(0)}}};
  const auto g = analyze_sequential(p, [](TaskId, TaskId) { return false; });
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Sequential, TotalOrderChain) {
  AProgram p;
  for (std::uint64_t i = 0; i < 5; ++i) p.push_back({ATask{TaskId(i), ShardId(0)}});
  const auto g = analyze_sequential(p, [](TaskId, TaskId) { return true; });
  // DEPseq registers all (redundant) dependences: n*(n-1)/2 edges.
  EXPECT_EQ(g.num_edges(), 10u);
}

TEST(ValidProgram, DetectsDuplicateTask) {
  AProgram p{{ATask{TaskId(0), ShardId(0)}}, {ATask{TaskId(0), ShardId(0)}}};
  EXPECT_FALSE(is_valid_program(p, [](TaskId, TaskId) { return false; }));
}

TEST(ValidProgram, DetectsIntraGroupDependence) {
  AProgram p{{ATask{TaskId(0), ShardId(0)}, ATask{TaskId(1), ShardId(0)}}};
  EXPECT_FALSE(is_valid_program(p, [](TaskId, TaskId) { return true; }));
  EXPECT_TRUE(is_valid_program(p, [](TaskId, TaskId) { return false; }));
}

TEST(CyclicSharding, RoundRobinsWithinGroups) {
  Fig1Program fig(1);
  const AProgram sharded = apply_cyclic_sharding(fig.program, 2);
  for (const auto& tg : sharded) {
    EXPECT_EQ(tg[0].owner, ShardId(0));
    EXPECT_EQ(tg[1].owner, ShardId(1));
  }
}

TEST(Replicated, SingleShardMatchesSequential) {
  Fig1Program fig(3);
  const AProgram sharded = apply_cyclic_sharding(fig.program, 1);
  Philox4x32 rng(1);
  EXPECT_EQ(analyze_replicated(sharded, 1, fig.oracle, rng),
            analyze_sequential(fig.program, fig.oracle));
}

TEST(Replicated, Fig1TwoShardsMatchesSequential) {
  Fig1Program fig(2);
  const AProgram sharded = apply_cyclic_sharding(fig.program, 2);
  const auto expected = analyze_sequential(fig.program, fig.oracle);
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    Philox4x32 rng(seed);
    EXPECT_EQ(analyze_replicated(sharded, 2, fig.oracle, rng), expected)
        << "interleaving seed " << seed;
  }
}

TEST(Replicated, UsesFastPathForIndependentGroups) {
  AProgram p;
  for (std::uint64_t i = 0; i < 8; ++i) p.push_back({ATask{TaskId(i), ShardId(0)}});
  Philox4x32 rng(3);
  ReplicatedStats stats;
  analyze_replicated(apply_cyclic_sharding(p, 2), 2, [](TaskId, TaskId) { return false; },
                     rng, &stats);
  EXPECT_EQ(stats.ta_steps, 0u);  // no dependences => Tc only
  EXPECT_EQ(stats.tb_steps, 0u);
  EXPECT_EQ(stats.tc_steps, 16u);  // 8 groups x 2 shards
}

TEST(Replicated, CrossShardDependenceGatesRegistration) {
  // Group 0 task on shard 0; group 1 task on shard 1 depends on it.
  AProgram p{{ATask{TaskId(0), ShardId(0)}}, {ATask{TaskId(1), ShardId(1)}}};
  const Oracle dep = [](TaskId a, TaskId b) { return a == TaskId(0) && b == TaskId(1); };
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Philox4x32 rng(seed);
    ReplicatedStats stats;
    const auto g = analyze_replicated(p, 2, dep, rng, &stats);
    EXPECT_TRUE(g.has_edge(TaskId(0), TaskId(1)));
    EXPECT_EQ(stats.ta_steps, 1u);
    EXPECT_EQ(stats.tb_steps, 1u);
  }
}

// ------------------------- Theorem 1 property test -------------------------

TEST(Theorem1, RandomProgramsAllInterleavingsMatchSequential) {
  RandomProgramConfig cfg;
  for (std::uint64_t prog_seed = 0; prog_seed < 25; ++prog_seed) {
    Philox4x32 gen_rng(prog_seed, /*stream=*/1);
    RandomProgram rp = generate_random_program(cfg, gen_rng);
    ASSERT_TRUE(is_valid_program(rp.program, rp.oracle)) << "seed " << prog_seed;
    const auto expected = analyze_sequential(rp.program, rp.oracle);
    EXPECT_TRUE(expected.is_acyclic());
    for (std::size_t shards : {1u, 2u, 3u, 5u, 8u}) {
      const AProgram sharded = apply_cyclic_sharding(rp.program, shards);
      for (std::uint64_t il_seed = 0; il_seed < 4; ++il_seed) {
        Philox4x32 rng(prog_seed * 100 + il_seed, /*stream=*/2);
        const auto got = analyze_replicated(sharded, shards, rp.oracle, rng);
        ASSERT_EQ(got, expected)
            << "prog_seed=" << prog_seed << " shards=" << shards
            << " il_seed=" << il_seed;
      }
    }
  }
}

TEST(Theorem1, BlockShardingAlsoMatches) {
  // Ownership need not be cyclic: Theorem 1 only requires a total function.
  RandomProgramConfig cfg;
  cfg.num_groups = 10;
  Philox4x32 gen_rng(77, 1);
  RandomProgram rp = generate_random_program(cfg, gen_rng);
  // Block sharding: first half of each group to shard 0, rest to shard 1.
  AProgram sharded = rp.program;
  for (auto& tg : sharded) {
    for (std::size_t i = 0; i < tg.size(); ++i) {
      tg[i].owner = ShardId(i < (tg.size() + 1) / 2 ? 0 : 1);
    }
  }
  const auto expected = analyze_sequential(rp.program, rp.oracle);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Philox4x32 rng(seed);
    EXPECT_EQ(analyze_replicated(sharded, 2, rp.oracle, rng), expected);
  }
}

TEST(Theorem1, AdversarialShardingAllTasksOnOneShardOfMany) {
  // Degenerate but legal sharding: shard 3 owns everything, others idle.
  RandomProgramConfig cfg;
  cfg.num_groups = 8;
  Philox4x32 gen_rng(5, 1);
  RandomProgram rp = generate_random_program(cfg, gen_rng);
  AProgram sharded = rp.program;
  for (auto& tg : sharded) {
    for (auto& t : tg) t.owner = ShardId(3);
  }
  Philox4x32 rng(9);
  EXPECT_EQ(analyze_replicated(sharded, 4, rp.oracle, rng),
            analyze_sequential(rp.program, rp.oracle));
}

}  // namespace
}  // namespace dcr::an
