// Tests for the application suite: every paper workload runs to completion
// on the DCR executor with no determinism violations, with the structural
// properties the paper attributes to it.
#include <gtest/gtest.h>

#include "apps/circuit.hpp"
#include "apps/htr.hpp"
#include "apps/legate/solvers.hpp"
#include "apps/nn.hpp"
#include "apps/pennant.hpp"
#include "apps/soleil.hpp"
#include "apps/stencil.hpp"
#include "apps/taskbench.hpp"
#include "baselines/central.hpp"
#include "baselines/mpi.hpp"
#include "baselines/tf.hpp"
#include "dcr/runtime.hpp"

namespace dcr::apps {
namespace {

sim::MachineConfig machine_config(std::size_t nodes, std::size_t procs = 1) {
  return {.num_nodes = nodes,
          .compute_procs_per_node = procs,
          .network = {.alpha = us(1), .ns_per_byte = 0.1, .local_latency = ns(50)}};
}

core::DcrStats run_dcr(std::size_t nodes, core::FunctionRegistry& functions,
                       const core::ApplicationMain& app, core::DcrConfig cfg = {},
                       std::size_t procs = 1) {
  sim::Machine machine(machine_config(nodes, procs));
  core::DcrRuntime rt(machine, functions, cfg);
  return rt.execute(app);
}

// --------------------------------------------------------------------- circuit

TEST(Circuit, RunsOnDcrAcrossShardCounts) {
  for (std::size_t nodes : {1u, 2u, 4u}) {
    core::FunctionRegistry functions;
    const auto fns = register_circuit_functions(functions, 1.0);
    const auto stats = run_dcr(
        nodes, functions,
        make_circuit_app({.nodes_per_piece = 500, .wires_per_piece = 2000, .pieces = 8,
                          .steps = 4},
                         fns));
    EXPECT_TRUE(stats.completed) << nodes;
    EXPECT_FALSE(stats.determinism_violation);
    EXPECT_EQ(stats.point_tasks_launched, 8u * 3u * 4u);
  }
}

TEST(Circuit, DynamicPartitionIsReplicatedDeterministically) {
  // The ghost spans are drawn from the replicated RNG; all shards must make
  // identical create_partition calls (checked by the determinism checker).
  core::FunctionRegistry functions;
  const auto fns = register_circuit_functions(functions, 1.0);
  const auto stats = run_dcr(
      4, functions,
      make_circuit_app({.nodes_per_piece = 500, .wires_per_piece = 1000, .pieces = 8,
                        .steps = 2, .seed = 7},
                       fns));
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
}

TEST(Circuit, ReductionPrivilegesCommute) {
  // distribute_charge uses Reduce on aliased ghosts: consecutive reductions
  // with the same redop must not serialize against each other but must order
  // against the subsequent read-write of voltages.
  core::FunctionRegistry functions;
  const auto fns = register_circuit_functions(functions, 1.0);
  core::DcrConfig cfg;
  cfg.record_task_graph = true;
  sim::Machine machine(machine_config(2));
  core::DcrRuntime rt(machine, functions, cfg);
  const auto stats = rt.execute(make_circuit_app(
      {.nodes_per_piece = 100, .wires_per_piece = 200, .pieces = 4, .steps = 2}, fns));
  EXPECT_TRUE(stats.completed);
  EXPECT_TRUE(rt.realized_graph().is_acyclic());
}

// --------------------------------------------------------------------- pennant

TEST(Pennant, RunsWithBlockingDtCollective) {
  core::FunctionRegistry functions;
  const auto fns = register_pennant_functions(functions, 1.0);
  const auto stats = run_dcr(
      4, functions,
      make_pennant_app({.zones_per_piece = 1000, .pieces = 8, .cycles = 5}, fns));
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  // 4 launches/cycle x 8 pieces x 5 cycles.
  EXPECT_EQ(stats.point_tasks_launched, 4u * 8u * 5u);
}

TEST(Pennant, BlockingDtSlowsTheRun) {
  // The paper attributes the efficiency drop to the dt collective blocking
  // downstream work; turning it off must speed up the virtual makespan.
  auto run = [](bool blocking) {
    core::FunctionRegistry functions;
    const auto fns = register_pennant_functions(functions, 1.0);
    PennantConfig cfg{.zones_per_piece = 1000, .pieces = 8, .cycles = 8};
    cfg.blocking_dt = blocking;
    sim::Machine machine(machine_config(8));
    core::DcrRuntime rt(machine, functions);
    return rt.execute(make_pennant_app(cfg, fns)).makespan;
  };
  EXPECT_GT(run(true), run(false));
}

TEST(MpiPennant, VariantsOrderAsExpected) {
  auto run = [](const baselines::MpiPennantConfig& cfg, std::size_t ranks) {
    sim::Machine machine(machine_config(ranks));
    return baselines::run_mpi_pennant(machine, ranks, cfg).makespan;
  };
  baselines::MpiPennantConfig base{.zones_per_rank = 10000, .cycles = 5};
  const SimTime cpu = run(baselines::mpi_pennant_cpu(base), 8);
  const SimTime cuda = run(baselines::mpi_pennant_cuda(base), 8);
  const SimTime gpudirect = run(baselines::mpi_pennant_gpudirect(base), 8);
  EXPECT_GT(cpu, cuda);        // CPU-only much slower
  EXPECT_GE(cuda, gpudirect);  // GPUDirect removes staging cost
}

// -------------------------------------------------------------------------- nn

TEST(Train, ResNetDataParallelRunsOnDcr) {
  core::FunctionRegistry functions;
  const auto fns = register_train_functions(functions);
  TrainConfig cfg;
  cfg.gpus = 8;
  cfg.iterations = 2;
  const auto spec = NetworkSpec::resnet50();
  core::DcrConfig dcfg;
  dcfg.shards_per_node = 4;  // one shard per GPU, 4 GPUs per node
  const auto stats = run_dcr(2, functions, make_train_app(spec, cfg, fns), dcfg, 4);
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  // fwd + bwd + sync + update per layer per iteration, 8 points each.
  EXPECT_EQ(stats.point_tasks_launched, spec.layers.size() * 4 * 2 * 8);
}

TEST(Train, HybridReducesSyncVolumeForCandle) {
  // CANDLE: hybrid parallelism cuts gradient traffic ~20x (paper §5.3), so
  // per-iteration time at scale must drop markedly versus data parallel.
  auto run = [](TrainConfig::Strategy strategy) {
    core::FunctionRegistry functions;
    const auto fns = register_train_functions(functions);
    TrainConfig cfg;
    cfg.gpus = 16;
    cfg.iterations = 2;
    cfg.strategy = strategy;
    core::DcrConfig dcfg;
    dcfg.shards_per_node = 4;
    sim::Machine machine(machine_config(4, 4));
    core::DcrRuntime rt(machine, functions, dcfg);
    return rt.execute(make_train_app(NetworkSpec::candle_uno(), cfg, fns)).makespan;
  };
  const SimTime dp = run(TrainConfig::Strategy::DataParallel);
  const SimTime hybrid = run(TrainConfig::Strategy::Hybrid);
  EXPECT_LT(hybrid, dp);
  EXPECT_GT(static_cast<double>(dp) / static_cast<double>(hybrid), 2.0);
}

TEST(Train, TfModelMatchesShape) {
  // TF per-iteration time grows with gradient volume but not with GPU count
  // once the ring all-reduce saturates (volume -> 2*bytes).
  const auto resnet = NetworkSpec::resnet50();
  const SimTime t8 = baselines::tf_training_time(resnet, 8, 1);
  const SimTime t512 = baselines::tf_training_time(resnet, 512, 1);
  EXPECT_LT(static_cast<double>(t512), static_cast<double>(t8) * 3.0);
  // CANDLE's 768M params make comm dominate: per-iteration time far above
  // ResNet's at the same GPU count.
  const SimTime c64 = baselines::tf_training_time(NetworkSpec::candle_uno(), 64, 1);
  const SimTime r64 = baselines::tf_training_time(resnet, 64, 1);
  EXPECT_GT(c64, 2 * r64);
}

// ------------------------------------------------------------------ legate

TEST(Legate, LogisticRegressionRunsOnDcrAndCentral) {
  legate::LogisticRegressionConfig cfg{.samples_per_piece = 1000, .features = 8,
                                       .iterations = 3};
  core::FunctionRegistry f1;
  const auto fns1 = legate::register_legate_functions(f1, 1.0);
  const auto dstats = run_dcr(4, f1, legate::make_logistic_regression(cfg, fns1));
  EXPECT_TRUE(dstats.completed);
  EXPECT_FALSE(dstats.determinism_violation);

  core::FunctionRegistry f2;
  const auto fns2 = legate::register_legate_functions(f2, 1.0);
  sim::Machine machine(machine_config(4));
  baselines::CentralRuntime central(machine, f2);
  legate::LogisticRegressionConfig ccfg = cfg;
  ccfg.pieces = 4;  // the Dask user must pick a chunking; Legate auto-selects
  const auto cstats = central.execute(legate::make_logistic_regression(ccfg, fns2));
  EXPECT_TRUE(cstats.completed);
  EXPECT_EQ(cstats.point_tasks_launched, dstats.point_tasks_launched);
}

TEST(Legate, CgFixedIterations) {
  core::FunctionRegistry functions;
  const auto fns = legate::register_legate_functions(functions, 1.0);
  const auto stats = run_dcr(
      4, functions,
      legate::make_preconditioned_cg({.unknowns_per_piece = 1000, .iterations = 5}, fns));
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
}

TEST(Legate, CgConvergenceLoopIsControlDeterministic) {
  // The convergence branch consumes a future-valued residual: all shards
  // must take identical exits.
  core::FunctionRegistry functions;
  const auto fns = legate::register_legate_functions(functions, 1.0);
  legate::CgConfig cfg{.unknowns_per_piece = 500};
  cfg.until_convergence = true;
  cfg.tolerance = 0.05;
  const auto stats = run_dcr(3, functions, legate::make_preconditioned_cg(cfg, fns));
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
}

// ----------------------------------------------------------------- taskbench

TEST(TaskBench, EfficiencyImprovesWithGranularity) {
  auto efficiency = [](SimTime gran) {
    core::FunctionRegistry functions;
    const FunctionId fn = register_taskbench_function(functions);
    TaskBenchConfig cfg{.width = 4, .steps = 8, .copies = 4, .task_granularity = gran};
    sim::Machine machine(machine_config(4));
    core::DcrRuntime rt(machine, functions);
    const auto stats = rt.execute(make_taskbench_app(cfg, fn));
    return taskbench_efficiency(cfg, 4, stats.makespan);
  };
  EXPECT_LT(efficiency(us(2)), 0.5);
  EXPECT_GT(efficiency(ms(10)), 0.9);
  EXPECT_GT(efficiency(ms(10)), efficiency(us(50)));
}

TEST(TaskBench, MetgFindsThreshold) {
  TaskBenchConfig cfg{.width = 4, .steps = 8, .copies = 4};
  const SimTime metg = find_metg(cfg, 4, [&](const TaskBenchConfig& c) {
    core::FunctionRegistry local;
    const FunctionId lfn = register_taskbench_function(local);
    sim::Machine machine(machine_config(4));
    core::DcrRuntime rt(machine, local);
    return rt.execute(make_taskbench_app(c, lfn)).makespan;
  });
  EXPECT_GT(metg, us(1));
  EXPECT_LT(metg, ms(100));
  // Sanity: at the METG the efficiency really is >= 50%.
  core::FunctionRegistry local;
  const FunctionId lfn = register_taskbench_function(local);
  TaskBenchConfig at = cfg;
  at.task_granularity = metg;
  sim::Machine machine(machine_config(4));
  core::DcrRuntime rt(machine, local);
  const auto stats = rt.execute(make_taskbench_app(at, lfn));
  EXPECT_GE(taskbench_efficiency(at, 4, stats.makespan), 0.5);
}

// ------------------------------------------------------------- soleil & htr

TEST(Soleil, CoupledPhysicsRunsOnDcr) {
  core::FunctionRegistry functions;
  const auto fns = register_soleil_functions(functions, 0.5);
  const auto stats = run_dcr(
      4, functions,
      make_soleil_app({.cells_per_piece = 1000, .particles_per_piece = 500, .pieces = 8,
                       .steps = 3},
                      fns));
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  EXPECT_GT(stats.point_tasks_launched, 8u * 5u * 3u - 1);  // >= 5 launches/step
}

TEST(Htr, DataDependentSubcyclingIsDeterministic) {
  core::FunctionRegistry functions;
  const auto fns = register_htr_functions(functions, 0.5);
  const HtrConfig cfg{.cells_per_piece = 1000, .pieces = 4, .steps = 6, .subcycle_every = 3};
  const auto stats = run_dcr(4, functions, make_htr_app(cfg, fns));
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  // Steps 0 and 3 trip the CFL and run 2 extra substeps each: per piece,
  // (6 + 4) substeps x 2 launches + 6 CFL launches.
  EXPECT_EQ(stats.point_tasks_launched, 4u * ((6u + 4u) * 2u + 6u));
}

}  // namespace
}  // namespace dcr::apps
