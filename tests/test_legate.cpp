// Tests for the Legate-NumPy-like ndarray library: op-to-launch translation,
// auto-chunking, the broadcast-read and reduction patterns, and the solver
// programs (logistic regression, CG, Jacobi, power iteration) on DCR and on
// the centralized executor.
#include <gtest/gtest.h>

#include "apps/legate/solvers.hpp"
#include "baselines/central.hpp"
#include "dcr/runtime.hpp"

namespace dcr::apps::legate {
namespace {

struct Harness {
  sim::Machine machine;
  core::FunctionRegistry functions;
  core::DcrRuntime runtime;
  LegateFunctions fns;
  explicit Harness(std::size_t nodes, core::DcrConfig cfg = {})
      : machine({.num_nodes = nodes,
                 .compute_procs_per_node = 1,
                 .network = {.alpha = us(1), .ns_per_byte = 0.1}}),
        runtime(machine, functions, cfg),
        fns(register_legate_functions(functions, 1.0)) {}
};

TEST(Ndarray, AutoChunkingMatchesShardCount) {
  Harness h(4);
  std::size_t pieces = 0;
  h.runtime.execute([&](core::Context& ctx) {
    LegateRuntime np(ctx, h.fns);
    pieces = np.pieces();
    NDArray a = np.zeros(1000);
    EXPECT_EQ(ctx.forest().num_subregions(a.chunks), 4u);
    ctx.execution_fence();
  });
  EXPECT_EQ(pieces, 4u);
}

TEST(Ndarray, ElementwiseOpsLaunchOneTaskPerChunk) {
  Harness h(2);
  const auto stats = h.runtime.execute([&](core::Context& ctx) {
    LegateRuntime np(ctx, h.fns, 6);
    NDArray a = np.zeros(600), b = np.zeros(600), c = np.zeros(600);
    np.map(c, a, b);   // c = a + b
    np.update(c, a);   // c += a
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.point_tasks_launched, 2u * 6u);
}

TEST(Ndarray, MatvecBroadcastReadMovesVectorToEveryNode) {
  Harness h(4);
  const auto stats = h.runtime.execute([&](core::Context& ctx) {
    LegateRuntime np(ctx, h.fns);
    NDArray X = np.zeros2d(4000, 16);
    NDArray w = np.zeros(16);
    NDArray out = np.zeros(4000);
    // Write w once so the broadcast read has a producer to fetch from.
    np.map(w, w);
    np.matvec(out, X, w);
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.completed);
  // The single-node writer's chunk of w is fetched by the 3 other nodes.
  EXPECT_GT(stats.bytes_moved, 0u);
}

TEST(Ndarray, MatmulAndNorm) {
  Harness h(3);
  double nrm = -1.0;
  const auto stats = h.runtime.execute([&](core::Context& ctx) {
    LegateRuntime np(ctx, h.fns);
    NDArray A = np.zeros2d(300, 8);
    NDArray B = np.zeros2d(8, 8);
    NDArray C = np.zeros2d(300, 8);
    np.matmul(C, A, B);
    nrm = np.norm(np.zeros(300), /*scalar_arg=*/2);
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.completed);
  EXPECT_DOUBLE_EQ(nrm, 0.25);  // 0.5^2, chunking-independent
}

TEST(Ndarray, NormIsChunkingIndependent) {
  for (std::size_t pieces : {1u, 2u, 5u}) {
    Harness h(2);
    double nrm = -1.0;
    h.runtime.execute([&](core::Context& ctx) {
      LegateRuntime np(ctx, h.fns, pieces);
      NDArray a = np.zeros(500);
      nrm = np.norm(a, 3);
      ctx.execution_fence();
    });
    EXPECT_DOUBLE_EQ(nrm, 0.125) << pieces << " pieces";
  }
}

// ---------------------------------------------------------------- solvers

TEST(Solvers, JacobiConvergesIdenticallyOnAllShards) {
  Harness h(4);
  const auto stats = h.runtime.execute(
      make_jacobi({.unknowns_per_piece = 1000, .tolerance = 0.05}, h.fns));
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  // norm decays 0.5^k: residuals 1, .5, .25, .125, .0625, .03125 — the loop
  // exits after 6 iterations of (3 maps/spmv + 1 norm launch) x 4 pieces.
  EXPECT_EQ(stats.point_tasks_launched, 6u * 4u * 4u);
}

TEST(Solvers, PowerIterationRunsTraced) {
  Harness h(4);
  const auto stats = h.runtime.execute(
      make_power_iteration({.dim_per_piece = 500, .iterations = 6}, h.fns));
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  EXPECT_GT(stats.traced_ops, 0u);  // the matvec trace replays after iter 1
}

TEST(Solvers, EverySolverRunsOnTheCentralExecutorToo) {
  sim::Machine machine({.num_nodes = 2,
                        .compute_procs_per_node = 1,
                        .network = {.alpha = us(1), .ns_per_byte = 0.1}});
  core::FunctionRegistry functions;
  const auto fns = register_legate_functions(functions, 1.0);
  baselines::CentralRuntime rt(machine, functions);
  std::size_t completed = 0;
  for (int which = 0; which < 2; ++which) {
    sim::Machine m({.num_nodes = 2,
                    .compute_procs_per_node = 1,
                    .network = {.alpha = us(1), .ns_per_byte = 0.1}});
    core::FunctionRegistry f;
    const auto lfns = register_legate_functions(f, 1.0);
    baselines::CentralRuntime central(m, f);
    const core::ApplicationMain app =
        which == 0
            ? make_jacobi({.unknowns_per_piece = 200, .tolerance = 0.05, .pieces = 2}, lfns)
            : make_power_iteration({.dim_per_piece = 200, .iterations = 3, .pieces = 2},
                                   lfns);
    const auto stats = central.execute(app);
    EXPECT_TRUE(stats.completed);
    ++completed;
  }
  EXPECT_EQ(completed, 2u);
  (void)fns;
  (void)rt;
}

TEST(Solvers, CgTraceReplayCutsAnalysisTime) {
  auto busy = [](bool tracing) {
    core::DcrConfig cfg;
    cfg.tracing_enabled = tracing;
    Harness h(4, cfg);
    h.runtime.execute(
        make_preconditioned_cg({.unknowns_per_piece = 2000, .iterations = 12}, h.fns));
    SimTime total = 0;
    for (std::uint32_t n = 0; n < 4; ++n) {
      total += h.machine.analysis_proc(NodeId(n)).busy_time();
    }
    return total;
  };
  EXPECT_LT(busy(true), busy(false));
}

TEST(Solvers, KMeansAssignReduceUpdate) {
  Harness h(4);
  const auto stats = h.runtime.execute(make_kmeans(
      {.points_per_piece = 1000, .clusters = 8, .features = 4, .iterations = 5}, h.fns));
  EXPECT_TRUE(stats.completed);
  EXPECT_FALSE(stats.determinism_violation);
  // 3 launches x 4 pieces x 5 iterations.
  EXPECT_EQ(stats.point_tasks_launched, 3u * 4u * 5u);
  // The reduction into the shared centroid table is cross-partition: fences.
  EXPECT_GT(stats.fences_inserted, 0u);
}

TEST(Profile, PerFunctionCountsAndTimes) {
  Harness h(2);
  const auto stats = h.runtime.execute([&](core::Context& ctx) {
    LegateRuntime np(ctx, h.fns, 4);
    NDArray a = np.zeros(400), b = np.zeros(400);
    np.map(b, a);
    np.map(b, a);
    np.dot(a, b, 1);
    ctx.execution_fence();
  });
  EXPECT_TRUE(stats.completed);
  const auto& prof = h.runtime.profile();
  ASSERT_TRUE(prof.count(h.fns.elementwise));
  EXPECT_EQ(prof.at(h.fns.elementwise).tasks, 8u);  // 2 maps x 4 chunks
  EXPECT_GT(prof.at(h.fns.elementwise).total_time, 0u);
  ASSERT_TRUE(prof.count(h.fns.dot_partial));
  EXPECT_EQ(prof.at(h.fns.dot_partial).tasks, 4u);
}

}  // namespace
}  // namespace dcr::apps::legate
