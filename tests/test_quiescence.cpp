// Tests for the quiescence tracker (execution-fence support) and regression
// tests for the physical-state copy-coverage bug: acquiring a rect covered
// by multiple replicas must fetch each piece exactly once, never once per
// replica (the original bug grew copies exponentially across iterations).
#include <gtest/gtest.h>

#include "runtime/physical.hpp"
#include "sim/quiescence.hpp"

namespace dcr {
namespace {

// ----------------------------------------------------------- quiescence

TEST(Quiescence, IdleWhenNothingTracked) {
  sim::Simulator sim;
  sim::QuiescenceTracker q(sim);
  EXPECT_TRUE(q.idle());
  EXPECT_EQ(q.outstanding(), 0u);
}

TEST(Quiescence, TracksUntriggeredEvents) {
  sim::Simulator sim;
  sim::QuiescenceTracker q(sim);
  sim::UserEvent a, b;
  q.add(a);
  q.add(b);
  EXPECT_FALSE(q.idle());
  EXPECT_EQ(q.outstanding(), 2u);
  a.trigger(1);
  EXPECT_FALSE(q.idle());
  b.trigger(2);
  EXPECT_TRUE(q.idle());
}

TEST(Quiescence, TriggeredEventsAreFree) {
  sim::Simulator sim;
  sim::QuiescenceTracker q(sim);
  sim::UserEvent a;
  a.trigger(0);
  q.add(a);
  EXPECT_TRUE(q.idle());
}

TEST(Quiescence, IdleEventFiresOnDrain) {
  sim::Simulator sim;
  sim::QuiescenceTracker q(sim);
  sim::UserEvent a;
  q.add(a);
  sim::Event idle = q.idle_event();
  EXPECT_FALSE(idle.has_triggered());
  sim.schedule(100, [&] { a.trigger(sim.now()); });
  sim.run();
  EXPECT_TRUE(idle.has_triggered());
  EXPECT_EQ(idle.trigger_time(), 100u);
}

TEST(Quiescence, NewWorkAfterIdleGetsFreshIdleEvent) {
  sim::Simulator sim;
  sim::QuiescenceTracker q(sim);
  sim::UserEvent a;
  q.add(a);
  sim::Event idle1 = q.idle_event();
  a.trigger(5);
  EXPECT_TRUE(idle1.has_triggered());
  sim::UserEvent b;
  q.add(b);
  EXPECT_FALSE(q.idle());
  sim::Event idle2 = q.idle_event();
  EXPECT_FALSE(idle2.has_triggered());
  b.trigger(9);
  EXPECT_TRUE(idle2.has_triggered());
}

TEST(Quiescence, ManyWaitersShareOneIdleEvent) {
  sim::Simulator sim;
  sim::QuiescenceTracker q(sim);
  sim::UserEvent a;
  q.add(a);
  const sim::Event e1 = q.idle_event();
  const sim::Event e2 = q.idle_event();
  EXPECT_TRUE(e1 == e2);  // O(1) per waiter: the whole point of the tracker
  a.trigger(1);
}

// ------------------------------------ physical-state coverage regression

struct PhysFixture {
  sim::Simulator sim;
  sim::Network net{sim, 8, {.alpha = us(1), .ns_per_byte = 1.0, .local_latency = ns(50)}};
  rt::RegionForest forest;
  FieldSpaceId fs = forest.create_field_space();
  FieldId f = forest.allocate_field(fs, 8, "f");
  RegionTreeId tree = forest.create_tree(rt::Rect::r1(0, 1023), fs);
  rt::PhysicalState phys{forest, net};
};

TEST(PhysicalRegression, MultipleReplicasFetchedExactlyOnce) {
  PhysFixture fx;
  // Producer on node 0; replicas spread to nodes 1..3 by successive reads.
  fx.phys.record_write(fx.tree, fx.f, rt::Rect::r1(0, 63), NodeId(0), sim::Event::no_event());
  for (std::uint32_t n = 1; n <= 3; ++n) {
    fx.phys.acquire(fx.tree, fx.f, rt::Rect::r1(0, 63), NodeId(n));
  }
  EXPECT_EQ(fx.phys.copies_issued(), 3u);  // one per reader
  // Node 4 now reads the same rect: 4 entries overlap (producer + 3
  // replicas), but exactly ONE 64-element fetch must happen.
  const std::uint64_t before = fx.phys.bytes_moved();
  fx.phys.acquire(fx.tree, fx.f, rt::Rect::r1(0, 63), NodeId(4));
  EXPECT_EQ(fx.phys.bytes_moved() - before, 64u * 8u);
  EXPECT_EQ(fx.phys.copies_issued(), 4u);
}

TEST(PhysicalRegression, BroadcastReadStaysLinearOverIterations) {
  // The original bug: broadcast-read + chunked-write loops (the Legate
  // matvec pattern) grew copies exponentially per iteration.
  PhysFixture fx;
  const rt::Rect whole = rt::Rect::r1(0, 63);
  std::uint64_t last_iter_copies = 0;
  for (int iter = 0; iter < 6; ++iter) {
    // Every node writes its chunk...
    for (std::uint32_t n = 0; n < 8; ++n) {
      fx.phys.record_write(fx.tree, fx.f, rt::Rect::r1(n * 8, n * 8 + 7), NodeId(n),
                           sim::Event::no_event());
    }
    // ...then every node reads the whole array.
    const std::uint64_t before = fx.phys.copies_issued();
    for (std::uint32_t n = 0; n < 8; ++n) {
      fx.phys.acquire(fx.tree, fx.f, whole, NodeId(n));
    }
    const std::uint64_t this_iter = fx.phys.copies_issued() - before;
    // 8 nodes x 7 remote chunks = 56 copies per iteration, every iteration.
    EXPECT_EQ(this_iter, 56u) << "iteration " << iter;
    if (iter > 0) {
      EXPECT_EQ(this_iter, last_iter_copies);
    }
    last_iter_copies = this_iter;
  }
}

TEST(PhysicalRegression, PartialReplicaCoverage) {
  PhysFixture fx;
  fx.phys.record_write(fx.tree, fx.f, rt::Rect::r1(0, 99), NodeId(0), sim::Event::no_event());
  // Node 1 holds a replica of the middle only.
  fx.phys.acquire(fx.tree, fx.f, rt::Rect::r1(40, 59), NodeId(1));
  EXPECT_EQ(fx.phys.copies_issued(), 1u);
  // Node 2 reads everything: must fetch exactly 100 elements total, from
  // some disjoint combination of node 0 and node 1 pieces.
  const std::uint64_t before = fx.phys.bytes_moved();
  fx.phys.acquire(fx.tree, fx.f, rt::Rect::r1(0, 99), NodeId(2));
  EXPECT_EQ(fx.phys.bytes_moved() - before, 100u * 8u);
}

}  // namespace
}  // namespace dcr
