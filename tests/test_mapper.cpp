// Tests for the mapping interface (paper §4): mapper-selected sharding
// functions and processor placement, and the determinism requirement on
// mapper decisions.
#include <gtest/gtest.h>

#include "apps/stencil.hpp"
#include "dcr/mapper.hpp"
#include "dcr/runtime.hpp"

namespace dcr::core {
namespace {

sim::MachineConfig cluster(std::size_t nodes, std::size_t procs = 1) {
  return {.num_nodes = nodes,
          .compute_procs_per_node = procs,
          .network = {.alpha = us(1), .ns_per_byte = 0.1}};
}

TEST(Mapper, DefaultMapperMatchesNoMapper) {
  auto run = [](Mapper* mapper) {
    sim::Machine machine(cluster(4));
    FunctionRegistry functions;
    const auto fns = apps::register_stencil_functions(functions, 1.0);
    DcrConfig cfg;
    cfg.mapper = mapper;
    DcrRuntime rt(machine, functions, cfg);
    return rt.execute(
        apps::make_stencil_app({.cells_per_tile = 64, .tiles = 8, .steps = 4}, fns));
  };
  DefaultMapper def;
  const auto with = run(&def);
  const auto without = run(nullptr);
  EXPECT_TRUE(with.completed);
  EXPECT_EQ(with.makespan, without.makespan);
  EXPECT_EQ(with.fences_inserted, without.fences_inserted);
}

TEST(Mapper, ShardingOverrideChangesFenceStructure) {
  // A mapper forcing cyclic sharding on alternating task functions recreates
  // the Figure 11 scenario without touching the application.  Mapper
  // decisions must be pure functions of the launch: the mapper is queried
  // independently on every shard, so mutable state would diverge.
  struct AlternatingMapper : Mapper {
    ShardingId select_sharding(const IndexLaunch& l, std::size_t) override {
      return (l.fn.value % 2 == 0) ? ShardingRegistry::blocked()
                                   : ShardingRegistry::cyclic();
    }
  };
  auto fences = [](Mapper* mapper) {
    sim::Machine machine(cluster(4));
    FunctionRegistry functions;
    const auto fns = apps::register_stencil_functions(functions, 1.0);
    DcrConfig cfg;
    cfg.mapper = mapper;
    DcrRuntime rt(machine, functions, cfg);
    const auto stats = rt.execute(
        apps::make_stencil_app({.cells_per_tile = 64, .tiles = 8, .steps = 6}, fns));
    EXPECT_TRUE(stats.completed);
    EXPECT_FALSE(stats.determinism_violation);
    return stats.fences_inserted;
  };
  AlternatingMapper alternating;
  EXPECT_GT(fences(&alternating), fences(nullptr));
}

TEST(Mapper, ProcessorPlacementIsHonored) {
  // Pin every point task to slot 0: only one compute processor per node
  // does work even though four exist.
  struct PinningMapper : Mapper {
    std::size_t select_processor(FunctionId, std::uint64_t, std::size_t) override {
      return 0;
    }
  };
  PinningMapper pin;
  sim::Machine machine(cluster(2, /*procs=*/4));
  FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  DcrConfig cfg;
  cfg.mapper = &pin;
  DcrRuntime rt(machine, functions, cfg);
  const auto stats = rt.execute(
      apps::make_stencil_app({.cells_per_tile = 64, .tiles = 8, .steps = 3}, fns));
  EXPECT_TRUE(stats.completed);
  for (std::uint32_t n = 0; n < 2; ++n) {
    EXPECT_GT(machine.compute_proc(NodeId(n), 0).tasks_run(), 0u);
    for (std::size_t p = 1; p < 4; ++p) {
      EXPECT_EQ(machine.compute_proc(NodeId(n), p).tasks_run(), 0u) << n << "," << p;
    }
  }
}

TEST(Mapper, SpreadingMapperBeatsPinningOnMakespan) {
  struct PinningMapper : Mapper {
    std::size_t select_processor(FunctionId, std::uint64_t, std::size_t) override {
      return 0;
    }
  };
  auto makespan = [](Mapper* mapper) {
    sim::Machine machine(cluster(2, /*procs=*/4));
    FunctionRegistry functions;
    const auto fns = apps::register_stencil_functions(functions, 100.0);
    DcrConfig cfg;
    cfg.mapper = mapper;
    DcrRuntime rt(machine, functions, cfg);
    return rt.execute(
                 apps::make_stencil_app({.cells_per_tile = 5000, .tiles = 16, .steps = 4},
                                        fns))
        .makespan;
  };
  PinningMapper pin;
  DefaultMapper spread;
  EXPECT_GT(makespan(&pin), makespan(&spread) * 2);
}

}  // namespace
}  // namespace dcr::core
