// Unit and property tests for the axis-0 interval index that backs the
// physical-state tracker and the fine-stage user tracker.
#include <gtest/gtest.h>

#include <set>

#include "common/philox.hpp"
#include "runtime/interval_index.hpp"

namespace dcr::rt {
namespace {

TEST(IntervalIndex, EmptyIndexFindsNothing) {
  IntervalIndex<int> idx;
  int hits = 0;
  idx.for_each_overlapping(Rect::r1(0, 100), [&](const auto&) { ++hits; });
  EXPECT_EQ(hits, 0);
  EXPECT_TRUE(idx.empty());
}

TEST(IntervalIndex, FindsExactAndPartialOverlaps) {
  IntervalIndex<int> idx;
  idx.insert(Rect::r1(0, 9), 1);
  idx.insert(Rect::r1(10, 19), 2);
  idx.insert(Rect::r1(20, 29), 3);
  std::set<int> hits;
  idx.for_each_overlapping(Rect::r1(5, 14), [&](const auto& item) {
    hits.insert(item.value);
  });
  EXPECT_EQ(hits, (std::set<int>{1, 2}));
}

TEST(IntervalIndex, WideEntryFoundFromFarQuery) {
  // A whole-domain entry must be found even by queries whose lo is far past
  // the entry's lo (the max-width widening).
  IntervalIndex<int> idx;
  idx.insert(Rect::r1(0, 1'000'000), 7);
  idx.insert(Rect::r1(500, 510), 8);
  std::set<int> hits;
  idx.for_each_overlapping(Rect::r1(999'000, 999'100), [&](const auto& item) {
    hits.insert(item.value);
  });
  EXPECT_EQ(hits, (std::set<int>{7}));
}

TEST(IntervalIndex, ExtractRemovesOnlyMatching) {
  IntervalIndex<int> idx;
  idx.insert(Rect::r1(0, 9), 1);
  idx.insert(Rect::r1(5, 14), 2);
  idx.insert(Rect::r1(20, 29), 3);
  auto removed = idx.extract_overlapping_if(
      Rect::r1(0, 30), [](const auto& item) { return item.value != 2; });
  EXPECT_EQ(removed.size(), 2u);
  EXPECT_EQ(idx.size(), 1u);
  int remaining = 0;
  idx.for_each([&](const auto& item) { remaining = item.value; });
  EXPECT_EQ(remaining, 2);
}

TEST(IntervalIndex, TwoDimensionalRectsUseAxisZeroConservatively) {
  // Axis-0 overlap is a prefilter: rects overlapping on x but not y are
  // still visited (callers do the exact test).
  IntervalIndex<int> idx;
  idx.insert(Rect::r2(0, 9, 0, 9), 1);
  int hits = 0;
  idx.for_each_overlapping(Rect::r2(5, 14, 100, 110), [&](const auto&) { ++hits; });
  EXPECT_EQ(hits, 1);
}

TEST(IntervalIndex, PropertyMatchesLinearScan) {
  // Randomized: results of the index must equal a brute-force scan.
  Philox4x32 rng(2024);
  IntervalIndex<int> idx;
  std::vector<Rect> all;
  for (int i = 0; i < 300; ++i) {
    const auto lo = static_cast<std::int64_t>(rng.next_below(10000));
    const auto len = static_cast<std::int64_t>(rng.next_below(500));
    const Rect r = Rect::r1(lo, lo + len);
    idx.insert(r, i);
    all.push_back(r);
  }
  for (int q = 0; q < 200; ++q) {
    const auto lo = static_cast<std::int64_t>(rng.next_below(11000));
    const auto len = static_cast<std::int64_t>(rng.next_below(800));
    const Rect query = Rect::r1(lo, lo + len);
    std::set<int> got;
    idx.for_each_overlapping(query, [&](const auto& item) {
      if (overlaps(item.rect, query)) got.insert(item.value);
    });
    std::set<int> expected;
    for (int i = 0; i < 300; ++i) {
      if (overlaps(all[static_cast<std::size_t>(i)], query)) expected.insert(i);
    }
    ASSERT_EQ(got, expected) << "query " << query;
  }
}

}  // namespace
}  // namespace dcr::rt
