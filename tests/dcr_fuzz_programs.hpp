// Random region-based DCR programs shared by the end-to-end fuzzers
// (test_fuzz_dcr.cpp) and the dcr-spy verification suite (test_spy.cpp):
// random trees, partitions, privileges, and launch sequences that are
// non-interfering within each launch by construction.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/philox.hpp"
#include "dcr/api.hpp"
#include "dcr/sharding.hpp"

namespace dcr::fuzz {

// Per-suite fuzz seeds, derived from the suite's ctest label so different
// labels (-L spy, -L faults, -L template, ...) explore disjoint program
// spaces instead of sharing one hard-coded base.  FNV-1a over the label
// folded with the per-case index; the scheme is documented in tests/README.md.
inline std::uint64_t seed_for_label(const char* label, std::uint64_t index) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  for (const char* c = label; *c != '\0'; ++c) {
    h ^= static_cast<unsigned char>(*c);
    h *= 1099511628211ull;  // FNV-1a prime
  }
  return h ^ (index * 0x9e3779b97f4a7c15ull);  // golden-ratio index fold
}

struct RandomDcrProgram {
  // One op in the generated program.
  struct Op {
    enum class Kind { Fill, Launch } kind;
    std::size_t tree;       // which of the generated trees
    std::size_t rw_part;    // disjoint partition index for the RW requirement
    std::size_t rw_field;   // field index for the RW requirement
    bool has_ro = false;
    std::size_t ro_part;    // aliased (halo) partition index
    std::size_t ro_field;
    bool reduce = false;    // RED instead of RW on the aliased partition
    ShardingId sharding;
  };
  std::size_t num_trees;
  std::size_t tiles;
  std::vector<Op> ops;
};

// Programs are non-interfering within each launch by construction: writes go
// to a disjoint partition; aliased reads use a different field; reductions
// share a reduction operator (commutative).
inline RandomDcrProgram generate(Philox4x32& rng, std::size_t tiles) {
  RandomDcrProgram p;
  p.num_trees = 1 + rng.next_below(2);
  p.tiles = tiles;
  const std::size_t num_ops = 8 + rng.next_below(10);
  for (std::size_t i = 0; i < num_ops; ++i) {
    RandomDcrProgram::Op op;
    op.kind = rng.next_below(6) == 0 ? RandomDcrProgram::Op::Kind::Fill
                                     : RandomDcrProgram::Op::Kind::Launch;
    op.tree = rng.next_below(p.num_trees);
    op.rw_part = rng.next_below(2);   // two disjoint partitions per tree
    op.rw_field = rng.next_below(2);  // two fields per tree
    if (rng.next_below(2)) {
      op.has_ro = true;
      op.ro_part = 0;  // the single halo partition per tree
      op.ro_field = 1 - op.rw_field;
      op.reduce = rng.next_below(3) == 0;
    }
    op.sharding = rng.next_below(2) ? core::ShardingRegistry::blocked()
                                    : core::ShardingRegistry::cyclic();
    p.ops.push_back(op);
  }
  return p;
}

// Replicated region state for one generated tree, shared by the straight-line
// and loop-structured materializers.
struct FuzzTreeState {
  IndexSpaceId root;
  std::vector<FieldId> fields;
  std::vector<PartitionId> disjoint;  // [0]: blocked-equal, [1]: offset tiles
  PartitionId halo;
};

inline std::vector<FuzzTreeState> build_trees(core::Context& ctx,
                                              const RandomDcrProgram& p) {
  using namespace rt;
  std::vector<FuzzTreeState> trees;
  for (std::size_t t = 0; t < p.num_trees; ++t) {
    FieldSpaceId fs = ctx.create_field_space();
    FuzzTreeState st;
    st.fields.push_back(ctx.allocate_field(fs, 8, "a"));
    st.fields.push_back(ctx.allocate_field(fs, 8, "b"));
    const RegionTreeId tree =
        ctx.create_region(Rect::r1(0, static_cast<std::int64_t>(p.tiles) * 64 - 1), fs);
    st.root = ctx.root(tree);
    st.disjoint.push_back(ctx.partition_equal(st.root, p.tiles));
    // A second, offset disjoint partition (different tile boundaries).
    std::vector<Rect> offset;
    const std::int64_t n = static_cast<std::int64_t>(p.tiles) * 64;
    for (std::size_t c = 0; c < p.tiles; ++c) {
      const std::int64_t lo = static_cast<std::int64_t>(c) * n /
                              static_cast<std::int64_t>(p.tiles);
      const std::int64_t hi =
          (static_cast<std::int64_t>(c) + 1) * n / static_cast<std::int64_t>(p.tiles) - 1;
      offset.push_back(Rect::r1(std::min(lo + 7, hi), hi));
    }
    st.disjoint.push_back(ctx.create_partition(st.root, offset, true));
    st.halo = ctx.partition_with_halo(st.root, p.tiles, 2);
    trees.push_back(st);
  }
  return trees;
}

inline void emit_ops(core::Context& ctx, const RandomDcrProgram& p,
                     const std::vector<FuzzTreeState>& trees, FunctionId fn) {
  const rt::Rect domain = rt::Rect::r1(0, static_cast<std::int64_t>(p.tiles) - 1);
  for (const auto& op : p.ops) {
    const FuzzTreeState& st = trees[op.tree];
    if (op.kind == RandomDcrProgram::Op::Kind::Fill) {
      ctx.fill(st.root, {st.fields[op.rw_field]});
      continue;
    }
    core::IndexLaunch l;
    l.fn = fn;
    l.domain = domain;
    l.sharding = op.sharding;
    l.requirements.push_back(rt::GroupRequirement::on_partition(
        st.disjoint[op.rw_part], {st.fields[op.rw_field]}, rt::Privilege::ReadWrite));
    if (op.has_ro) {
      l.requirements.push_back(rt::GroupRequirement::on_partition(
          st.halo, {st.fields[op.ro_field]},
          op.reduce ? rt::Privilege::Reduce : rt::Privilege::ReadOnly,
          op.reduce ? 1 : 0));
    }
    ctx.index_launch(l);
  }
}

inline core::ApplicationMain materialize(const RandomDcrProgram& p, FunctionId fn) {
  return [p, fn](core::Context& ctx) {
    const std::vector<FuzzTreeState> trees = build_trees(ctx, p);
    emit_ops(ctx, p, trees, fn);
    ctx.execution_fence();
  };
}

// Loop-structured programs: a random window body re-issued for a number of
// iterations, optionally wrapped in begin/end_trace — the shape dependence
// templates (dcr/template.hpp) capture, validate, and replay.
struct LoopDcrProgram {
  RandomDcrProgram body;
  std::size_t iterations = 4;
};

inline LoopDcrProgram generate_loop(Philox4x32& rng, std::size_t tiles) {
  LoopDcrProgram p;
  p.body = generate(rng, tiles);
  // Trim to a window-sized body so many iterations stay cheap, and enough
  // iterations that a validated template replays several times.
  if (p.body.ops.size() > 6) p.body.ops.resize(6);
  p.iterations = 4 + rng.next_below(4);
  return p;
}

inline core::ApplicationMain materialize_loop(const LoopDcrProgram& p, FunctionId fn,
                                              bool use_trace,
                                              TraceId trace = TraceId(1)) {
  return [p, fn, use_trace, trace](core::Context& ctx) {
    const std::vector<FuzzTreeState> trees = build_trees(ctx, p.body);
    for (std::size_t i = 0; i < p.iterations; ++i) {
      if (use_trace) ctx.begin_trace(trace);
      emit_ops(ctx, p.body, trees, fn);
      if (use_trace) ctx.end_trace(trace);
    }
    ctx.execution_fence();
  };
}

}  // namespace dcr::fuzz
