// Unit tests for the task graph structure and its partial-order utilities.
#include <gtest/gtest.h>

#include "runtime/task_graph.hpp"

namespace dcr::rt {
namespace {

TaskGraph diamond() {
  TaskGraph g;
  for (std::uint64_t i = 0; i < 4; ++i) g.add_task(TaskId(i));
  g.add_edge(TaskId(0), TaskId(1));
  g.add_edge(TaskId(0), TaskId(2));
  g.add_edge(TaskId(1), TaskId(3));
  g.add_edge(TaskId(2), TaskId(3));
  return g;
}

TEST(TaskGraph, BasicStructure) {
  TaskGraph g = diamond();
  EXPECT_EQ(g.num_tasks(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_TRUE(g.has_edge(TaskId(0), TaskId(1)));
  EXPECT_FALSE(g.has_edge(TaskId(1), TaskId(0)));
  EXPECT_EQ(g.predecessors(TaskId(3)).size(), 2u);
  EXPECT_EQ(g.successors(TaskId(0)).size(), 2u);
}

TEST(TaskGraph, Equality) {
  EXPECT_EQ(diamond(), diamond());
  TaskGraph g = diamond();
  g.add_edge(TaskId(0), TaskId(3));
  EXPECT_FALSE(g == diamond());
}

TEST(TaskGraph, TopologicalOrderRespectsEdges) {
  const TaskGraph g = diamond();
  const auto order = g.topological_order();
  ASSERT_EQ(order.size(), 4u);
  auto pos = [&](TaskId t) {
    return std::find(order.begin(), order.end(), t) - order.begin();
  };
  EXPECT_LT(pos(TaskId(0)), pos(TaskId(1)));
  EXPECT_LT(pos(TaskId(0)), pos(TaskId(2)));
  EXPECT_LT(pos(TaskId(1)), pos(TaskId(3)));
  EXPECT_LT(pos(TaskId(2)), pos(TaskId(3)));
}

TEST(TaskGraph, AcyclicityDetection) {
  EXPECT_TRUE(diamond().is_acyclic());
  TaskGraph g;
  g.add_task(TaskId(0));
  g.add_task(TaskId(1));
  g.add_edge(TaskId(0), TaskId(1));
  g.add_edge(TaskId(1), TaskId(0));
  EXPECT_FALSE(g.is_acyclic());
}

TEST(TaskGraph, Reachability) {
  const TaskGraph g = diamond();
  EXPECT_TRUE(g.reaches(TaskId(0), TaskId(3)));
  EXPECT_TRUE(g.reaches(TaskId(2), TaskId(3)));
  EXPECT_FALSE(g.reaches(TaskId(1), TaskId(2)));
  EXPECT_TRUE(g.reaches(TaskId(1), TaskId(1)));
}

TEST(TaskGraph, TransitiveClosure) {
  const TaskGraph c = diamond().transitive_closure();
  EXPECT_TRUE(c.has_edge(TaskId(0), TaskId(3)));
  EXPECT_EQ(c.num_edges(), 5u);
}

TEST(TaskGraph, TransitiveReductionRemovesRedundantEdges) {
  TaskGraph g = diamond();
  g.add_edge(TaskId(0), TaskId(3));  // redundant through 1 and 2
  const TaskGraph r = g.transitive_reduction();
  EXPECT_FALSE(r.has_edge(TaskId(0), TaskId(3)));
  EXPECT_EQ(r, diamond());
  EXPECT_TRUE(r.same_partial_order(g));
}

TEST(TaskGraph, SamePartialOrderModuloTransitivity) {
  TaskGraph g = diamond();
  g.add_edge(TaskId(0), TaskId(3));
  EXPECT_TRUE(g.same_partial_order(diamond()));
  TaskGraph h = diamond();
  h.add_edge(TaskId(1), TaskId(2));  // genuinely new constraint
  EXPECT_FALSE(h.same_partial_order(diamond()));
}

TEST(TaskGraph, ChainReduction) {
  TaskGraph g;
  for (std::uint64_t i = 0; i < 10; ++i) g.add_task(TaskId(i));
  // Complete order: all i->j edges for i<j.
  for (std::uint64_t i = 0; i < 10; ++i) {
    for (std::uint64_t j = i + 1; j < 10; ++j) g.add_edge(TaskId(i), TaskId(j));
  }
  const TaskGraph r = g.transitive_reduction();
  EXPECT_EQ(r.num_edges(), 9u);  // a simple chain
  EXPECT_TRUE(r.same_partial_order(g));
}

TEST(TaskGraph, EmptyGraph) {
  TaskGraph g;
  EXPECT_EQ(g.num_tasks(), 0u);
  EXPECT_TRUE(g.is_acyclic());
  EXPECT_TRUE(g.topological_order().empty());
  EXPECT_EQ(g.transitive_reduction(), g);
}

}  // namespace
}  // namespace dcr::rt
