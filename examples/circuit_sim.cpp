// Example: the circuit simulation with runtime-chosen partitions.
//
// Demonstrates what makes DCR necessary for this workload (paper §5.1): the
// ghost-node spans depend on the randomly wired graph and are only known at
// run time, so the partitioning — and with it the communication pattern —
// cannot be fixed by a compiler.  Every shard draws identical spans from the
// replicated Philox RNG; the determinism checker verifies they agree.
//
// Usage: ./build/examples/circuit_sim [pieces=8] [steps=10] [seed=42]
#include <cstdio>
#include <cstdlib>

#include "apps/circuit.hpp"
#include "dcr/runtime.hpp"

using namespace dcr;

int main(int argc, char** argv) {
  const std::size_t pieces = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const std::size_t steps = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  apps::CircuitConfig cfg{.nodes_per_piece = 10000,
                          .wires_per_piece = 40000,
                          .pieces = pieces,
                          .steps = steps,
                          .seed = seed};

  sim::Machine machine({.num_nodes = pieces,
                        .compute_procs_per_node = 1,
                        .network = {.alpha = us(1), .ns_per_byte = 0.1}});
  core::FunctionRegistry functions;
  const auto fns = apps::register_circuit_functions(functions, 5.0);
  core::DcrRuntime rt(machine, functions);
  const auto stats = rt.execute(apps::make_circuit_app(cfg, fns));

  std::printf("circuit: %zu pieces, %zu steps (seed %llu)\n", pieces, steps,
              static_cast<unsigned long long>(seed));
  std::printf("  completed:            %s\n", stats.completed ? "yes" : "no");
  std::printf("  control deterministic: %s (%llu checks)\n",
              stats.determinism_violation ? "NO" : "yes",
              static_cast<unsigned long long>(stats.determinism_checks));
  std::printf("  virtual makespan:     %.3f ms\n", static_cast<double>(stats.makespan) / 1e6);
  std::printf("  point tasks:          %llu\n",
              static_cast<unsigned long long>(stats.point_tasks_launched));
  std::printf("  cross-shard fences:   %llu inserted, %llu deps elided\n",
              static_cast<unsigned long long>(stats.fences_inserted),
              static_cast<unsigned long long>(stats.fences_elided));
  std::printf("  halo traffic:         %.1f KB in %llu messages\n",
              static_cast<double>(stats.bytes_moved) / 1024.0,
              static_cast<unsigned long long>(stats.messages));
  std::printf("  throughput:           %.1f wires/us\n",
              static_cast<double>(cfg.wires_per_piece) * static_cast<double>(pieces) *
                  static_cast<double>(steps) / (static_cast<double>(stats.makespan) / 1e3));
  return stats.completed ? 0 : 1;
}
