// Example: the Figure 7 stencil on three executors, side by side.
//
// Runs the same implicitly parallel stencil program under (1) dynamic
// control replication, (2) the static-control-replication cost preset, and
// (3) the centralized lazy-evaluation controller, at a node count given on
// the command line — a miniature of the Figure 12 experiment with per-run
// detail printed (fences, data movement, analysis time).
//
// Usage: ./build/examples/stencil_scaling [nodes=8] [steps=10]
#include <cstdio>
#include <cstdlib>

#include "apps/stencil.hpp"
#include "baselines/central.hpp"
#include "baselines/scr.hpp"
#include "dcr/runtime.hpp"

using namespace dcr;

namespace {

sim::MachineConfig cluster(std::size_t nodes) {
  return {.num_nodes = nodes,
          .compute_procs_per_node = 1,
          .network = {.alpha = us(1), .ns_per_byte = 0.1}};
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const std::size_t steps = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10;
  const apps::StencilConfig cfg{.cells_per_tile = 100000, .tiles = nodes, .steps = steps};

  std::printf("1-D stencil, %zu tiles x %lld cells, %zu steps, %zu nodes\n\n", nodes,
              static_cast<long long>(cfg.cells_per_tile), steps, nodes);

  {
    sim::Machine machine(cluster(nodes));
    core::FunctionRegistry functions;
    const auto fns = apps::register_stencil_functions(functions, 10.0);
    core::DcrRuntime rt(machine, functions);
    const auto s = rt.execute(apps::make_stencil_app(cfg, fns));
    std::printf("dynamic control replication:  %8.3f ms  (fences %llu, elided %llu, "
                "moved %.1f KB, analysis busy %.3f ms)\n",
                static_cast<double>(s.makespan) / 1e6,
                static_cast<unsigned long long>(s.fences_inserted),
                static_cast<unsigned long long>(s.fences_elided),
                static_cast<double>(s.bytes_moved) / 1024.0,
                static_cast<double>(s.analysis_busy) / 1e6);
  }
  {
    sim::Machine machine(cluster(nodes));
    core::FunctionRegistry functions;
    const auto fns = apps::register_stencil_functions(functions, 10.0);
    core::DcrRuntime rt(machine, functions, baselines::scr_config());
    const auto s = rt.execute(apps::make_stencil_app(cfg, fns));
    std::printf("static control replication:   %8.3f ms  (compile-time analysis: zero "
                "runtime cost)\n",
                static_cast<double>(s.makespan) / 1e6);
  }
  {
    sim::Machine machine(cluster(nodes));
    core::FunctionRegistry functions;
    const auto fns = apps::register_stencil_functions(functions, 10.0);
    baselines::CentralConfig ccfg;
    ccfg.analysis_cost_per_task = us(20);
    baselines::CentralRuntime rt(machine, functions, ccfg);
    const auto s = rt.execute(apps::make_stencil_app(cfg, fns));
    std::printf("centralized controller:       %8.3f ms  (controller busy %.3f ms — the "
                "scaling bottleneck)\n",
                static_cast<double>(s.makespan) / 1e6,
                static_cast<double>(s.controller_busy) / 1e6);
  }
  return 0;
}
