// Example: a NumPy-style program on the Legate-like ndarray library.
//
// The conjugate-gradient solver below is written exactly the way a NumPy
// user would write it — arrays, elementwise ops, dots — with no mention of
// nodes, partitions, or communication.  The ndarray layer translates each
// call into group task launches, and DCR scales the resulting stream across
// the simulated cluster (paper §5.4).  The convergence loop branches on a
// future-valued residual: data-dependent control flow that every shard
// resolves identically.
//
// Usage: ./build/examples/ndarray_cg [sockets=8] [unknowns_per_socket=1000000]
#include <cstdio>
#include <cstdlib>

#include "apps/legate/solvers.hpp"
#include "dcr/runtime.hpp"

using namespace dcr;

int main(int argc, char** argv) {
  const std::size_t sockets = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const std::uint64_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1'000'000;

  apps::legate::CgConfig cfg{.unknowns_per_piece = n};
  cfg.until_convergence = true;  // loop on the residual future
  cfg.tolerance = 1e-2;

  sim::Machine machine({.num_nodes = sockets,
                        .compute_procs_per_node = 1,
                        .network = {.alpha = us(1), .ns_per_byte = 0.1}});
  core::FunctionRegistry functions;
  const auto fns = apps::legate::register_legate_functions(functions, 1.0);
  core::DcrRuntime rt(machine, functions);
  const auto stats = rt.execute(apps::legate::make_preconditioned_cg(cfg, fns));

  std::printf("preconditioned CG on %llu unknowns over %zu sockets\n",
              static_cast<unsigned long long>(n * sockets), sockets);
  std::printf("  completed:          %s (control determinism %s)\n",
              stats.completed ? "yes" : "no", stats.determinism_violation ? "VIOLATED" : "ok");
  std::printf("  virtual solve time: %.3f ms\n", static_cast<double>(stats.makespan) / 1e6);
  std::printf("  task launches:      %llu ops -> %llu point tasks\n",
              static_cast<unsigned long long>(stats.ops_issued),
              static_cast<unsigned long long>(stats.point_tasks_launched));
  std::printf("  halo + scalar traffic: %.1f KB\n",
              static_cast<double>(stats.bytes_moved) / 1024.0);
  return stats.completed ? 0 : 1;
}
