// Quickstart: the smallest complete DCR program.
//
// Builds a 4-node simulated cluster, writes an implicitly parallel control
// program against the Context API (create a region, partition it, launch
// task groups in a loop), and runs it control-replicated across the nodes.
// The same `main_task` would run unchanged on the centralized baseline —
// that executor-portability is the productivity story of the paper.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "dcr/runtime.hpp"
#include "sim/machine.hpp"

using namespace dcr;

int main() {
  // A 4-node machine: 1 analysis processor + 1 compute processor per node,
  // 1 us network latency, 10 GB/s links.
  sim::Machine machine({.num_nodes = 4,
                        .compute_procs_per_node = 1,
                        .network = {.alpha = us(1), .ns_per_byte = 0.1}});

  // Task functions carry a cost model (here: 2 us fixed + 10 ns per cell)
  // instead of real kernels; the runtime behaviour is what is simulated.
  core::FunctionRegistry functions;
  const FunctionId saxpy = functions.register_simple("saxpy", us(2), 10.0);
  const FunctionId norm = functions.register_simple(
      "norm", us(2), 10.0,
      [](const core::PointTaskInfo& info) { return 1.0 / (1.0 + info.args.at(0)); });

  core::DcrRuntime runtime(machine, functions);

  // The implicitly parallel control program: looks sequential, runs
  // replicated on every node, each shard analyzing only its slice.
  auto main_task = [&](core::Context& ctx) {
    FieldSpaceId fs = ctx.create_field_space();
    const FieldId x = ctx.allocate_field(fs, 8, "x");
    const FieldId y = ctx.allocate_field(fs, 8, "y");
    const RegionTreeId tree = ctx.create_region(rt::Rect::r1(0, 1 << 20), fs);
    const IndexSpaceId region = ctx.root(tree);
    const PartitionId chunks = ctx.partition_equal(region, ctx.num_shards());
    ctx.fill(region, {x, y});

    const rt::Rect domain = rt::Rect::r1(0, static_cast<std::int64_t>(ctx.num_shards()) - 1);
    double residual = 1.0;
    int iterations = 0;
    while (residual > 0.25) {  // data-dependent control flow, fine under DCR
      core::IndexLaunch update;
      update.fn = saxpy;
      update.domain = domain;
      update.requirements.push_back(
          rt::GroupRequirement::on_partition(chunks, {y}, rt::Privilege::ReadWrite));
      update.requirements.push_back(
          rt::GroupRequirement::on_partition(chunks, {x}, rt::Privilege::ReadOnly));
      ctx.index_launch(update);

      core::IndexLaunch check;
      check.fn = norm;
      check.domain = domain;
      check.args = {iterations};
      check.wants_futures = true;
      check.requirements.push_back(
          rt::GroupRequirement::on_partition(chunks, {y}, rt::Privilege::ReadOnly));
      const core::FutureMap fm = ctx.index_launch(check);
      residual = ctx.get_future(ctx.reduce_future_map(fm, core::ReduceOp::Max));
      ++iterations;
    }
    std::printf("[shard %u] converged after %d iterations (residual %.3f)\n",
                ctx.shard_id().value, iterations, residual);
  };

  const core::DcrStats stats = runtime.execute(main_task);
  std::printf("\ncompleted=%s  virtual makespan=%.3f ms  tasks=%llu  "
              "fences inserted=%llu elided=%llu  determinism checks=%llu\n",
              stats.completed ? "yes" : "no", static_cast<double>(stats.makespan) / 1e6,
              static_cast<unsigned long long>(stats.point_tasks_launched),
              static_cast<unsigned long long>(stats.fences_inserted),
              static_cast<unsigned long long>(stats.fences_elided),
              static_cast<unsigned long long>(stats.determinism_checks));
  return stats.completed && !stats.determinism_violation ? 0 : 1;
}
