// Example: checkpoint/restart with parallel file I/O, plus the automatic
// replicate-or-not heuristic.
//
// Phase 1 profiles a short run at small scale, asks the heuristic
// (dcr/auto_replicate.hpp) whether the workload warrants control replication
// at the target scale, and reports the crossover.  Phase 2 runs the workload
// with periodic checkpoints: every k steps the owned partition is flushed to
// per-piece files with the group detach (paper §4.3: "group variants of
// attach and detach provide support for parallel file I/O"), then re-attached
// to simulate a restart.
//
// Usage: ./build/examples/checkpoint_restart [nodes=8] [steps=12] [ckpt_every=4]
#include <cstdio>
#include <cstdlib>

#include "apps/stencil.hpp"
#include "dcr/auto_replicate.hpp"
#include "dcr/runtime.hpp"

using namespace dcr;

int main(int argc, char** argv) {
  const std::size_t nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const std::size_t steps = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 12;
  const std::size_t every = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 4;

  // ---- Phase 1: profile small, decide big -------------------------------
  core::OpStreamProfile profile;
  {
    sim::Machine machine({.num_nodes = 2,
                          .compute_procs_per_node = 1,
                          .network = {.alpha = us(1), .ns_per_byte = 0.1}});
    core::FunctionRegistry functions;
    const auto fns = apps::register_stencil_functions(functions, 10.0);
    core::DcrRuntime rt(machine, functions);
    const auto stats = rt.execute(
        apps::make_stencil_app({.cells_per_tile = 50000, .tiles = 2, .steps = 10}, fns));
    profile = core::OpStreamProfile::from_stats(stats, 2, 10);
  }
  const auto decision = core::decide_replication(profile, nodes);
  std::printf("auto-replication heuristic at %zu nodes:\n", nodes);
  std::printf("  centralized analysis/iter: %8.1f us\n",
              static_cast<double>(decision.central_analysis_per_iter) / 1e3);
  std::printf("  per-node compute/iter:     %8.1f us\n",
              static_cast<double>(decision.compute_per_node_per_iter) / 1e3);
  std::printf("  recommendation:            %s (crossover at ~%zu nodes)\n\n",
              decision.replicate ? "REPLICATE" : "centralized is fine",
              decision.crossover_nodes);

  // ---- Phase 2: run with periodic checkpoints ----------------------------
  sim::Machine machine({.num_nodes = nodes,
                        .compute_procs_per_node = 1,
                        .network = {.alpha = us(1), .ns_per_byte = 0.1}});
  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 10.0);
  core::DcrRuntime rt(machine, functions);

  std::size_t checkpoints = 0;
  const auto stats = rt.execute([&](core::Context& ctx) {
    using namespace rt;
    FieldSpaceId fs = ctx.create_field_space();
    const FieldId state = ctx.allocate_field(fs, 8, "state");
    const RegionTreeId tree = ctx.create_region(
        Rect::r1(0, 50000 * static_cast<std::int64_t>(nodes) - 1), fs);
    const PartitionId owned = ctx.partition_equal(ctx.root(tree), nodes);
    ctx.fill(ctx.root(tree), {state});

    const Rect domain = Rect::r1(0, static_cast<std::int64_t>(nodes) - 1);
    std::size_t local_ckpts = 0;
    for (std::size_t t = 0; t < steps; ++t) {
      core::IndexLaunch l;
      l.fn = fns.add_one;
      l.domain = domain;
      l.requirements.push_back(
          rt::GroupRequirement::on_partition(owned, {state}, Privilege::ReadWrite));
      ctx.index_launch(l);

      if ((t + 1) % every == 0) {
        // Parallel checkpoint: each shard flushes its pieces.
        ctx.attach_file_group(owned, {state}, "ckpt-" + std::to_string(t));
        ctx.detach_file_group(owned, {state});
        ++local_ckpts;
      }
    }
    ctx.execution_fence();
    checkpoints = local_ckpts;
  });

  std::printf("run: %zu steps on %zu nodes, %zu checkpoints\n", steps, nodes, checkpoints);
  std::printf("  completed=%s  makespan=%.3f ms  tasks=%llu  I/O+halo traffic=%.1f KB\n",
              stats.completed ? "yes" : "no", static_cast<double>(stats.makespan) / 1e6,
              static_cast<unsigned long long>(stats.point_tasks_launched),
              static_cast<double>(stats.bytes_moved) / 1024.0);
  return stats.completed ? 0 : 1;
}
