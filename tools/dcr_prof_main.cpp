// dcr-prof: profiling CLI over the always-on metrics layer (src/prof).
// Subcommands:
//
//   dcr-prof report <stencil|circuit|pennant> [--shards N] [--steps N]
//                   [--top K] [--snapshot FILE] [--zero-volatile]
//       Run the named app with profiling on, print the counter catalog,
//       top-k span kinds and critical path, and cross-check the profiler's
//       fence/elision ledger against the spy trace recorded in the same run.
//       Exit 0 iff the run completed and the ledgers agree.
//   dcr-prof trace <stencil|circuit|pennant> [--shards N] [--steps N]
//                  [--out FILE]
//       Run with span recording on and write the Chrome trace_event JSON
//       (default: <app>.prof.json).  Open in Perfetto (ui.perfetto.dev) or
//       chrome://tracing.  The file is schema-validated before writing.
//   dcr-prof diff <a.json> <b.json>
//       Compare two counter snapshots written by `report --snapshot`.
//       Prints every global/merged counter that changed, plus added/removed
//       sections for keys present on only one side (schema drift); exit 1 if
//       anything differed.
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "apps/circuit.hpp"
#include "apps/pennant.hpp"
#include "apps/stencil.hpp"
#include "dcr/runtime.hpp"
#include "prof/diff.hpp"
#include "prof/json.hpp"
#include "prof/report.hpp"
#include "prof/validate.hpp"

namespace {

using namespace dcr;

int usage() {
  std::cerr << "usage:\n"
            << "  dcr-prof report <stencil|circuit|pennant> [--shards N] [--steps N]"
               " [--top K] [--snapshot FILE] [--zero-volatile]\n"
            << "  dcr-prof trace <stencil|circuit|pennant> [--shards N] [--steps N]"
               " [--out FILE]\n"
            << "  dcr-prof diff <a.json> <b.json>\n";
  return 2;
}

struct RunOptions {
  std::string app;
  std::size_t shards = 4;
  std::size_t steps = 5;
  std::size_t top_k = 8;
  std::string out_path;
  std::string snapshot_path;
  bool zero_volatile = false;
};

bool parse_run_options(int argc, char** argv, RunOptions* opt) {
  if (argc < 1) return false;
  opt->app = argv[0];
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      opt->shards = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      opt->steps = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      opt->top_k = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt->out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--snapshot") == 0 && i + 1 < argc) {
      opt->snapshot_path = argv[++i];
    } else if (std::strcmp(argv[i], "--zero-volatile") == 0) {
      opt->zero_volatile = true;
    } else {
      return false;
    }
  }
  return true;
}

core::ApplicationMain make_app(const RunOptions& opt, core::FunctionRegistry& functions) {
  if (opt.app == "stencil") {
    const auto fns = apps::register_stencil_functions(functions, 1.0);
    return apps::make_stencil_app(
        {.cells_per_tile = 128, .tiles = 2 * opt.shards, .steps = opt.steps}, fns);
  }
  if (opt.app == "circuit") {
    const auto fns = apps::register_circuit_functions(functions, 1.0);
    return apps::make_circuit_app({.nodes_per_piece = 100,
                                   .wires_per_piece = 200,
                                   .pieces = 2 * opt.shards,
                                   .steps = opt.steps},
                                  fns);
  }
  if (opt.app == "pennant") {
    const auto fns = apps::register_pennant_functions(functions, 1.0);
    return apps::make_pennant_app(
        {.zones_per_piece = 200, .pieces = 2 * opt.shards, .cycles = opt.steps}, fns);
  }
  return nullptr;
}

// The acceptance cross-check: the profiler's online fence/elision ledger must
// reproduce exactly what the spy trace (ground truth for the offline
// verifier) says happened, dependence by dependence.
bool cross_check(const core::DcrRuntime& rt, std::ostream& os) {
  const spy::Trace* trace = rt.trace();
  if (!trace) {
    os << "cross-check: no spy trace recorded\n";
    return false;
  }
  std::uint64_t spy_issued = 0, spy_elided = 0;
  for (const spy::CoarseDepRecord& d : trace->coarse_deps) {
    (d.elided ? spy_elided : spy_issued)++;
  }
  const prof::Counters& g = rt.profiler().global();
  // Corruption healing re-issues a traced op's cached fence decisions into
  // the prof ledger (the re-replayed tail re-decides them) without appending
  // spy records — the spy trace stays the ground-truth *task graph*, which a
  // heal by design does not change.  Subtract the re-issued share before
  // comparing, and surface it so a reconciliation under SDC is auditable.
  const std::uint64_t reissued_f = g.get(prof::GlobalCounter::SdcReissuedFences);
  const std::uint64_t reissued_e = g.get(prof::GlobalCounter::SdcReissuedElisions);
  const std::uint64_t reissued_d = g.get(prof::GlobalCounter::SdcReissuedDecisions);
  const std::uint64_t issued = g.get(prof::GlobalCounter::FencesIssued) - reissued_f;
  const std::uint64_t elided = g.get(prof::GlobalCounter::FencesElided) - reissued_e;
  const std::uint64_t decisions = g.get(prof::GlobalCounter::FenceDecisions) - reissued_d;
  const bool ok = issued == spy_issued && elided == spy_elided &&
                  decisions == spy_issued + spy_elided;
  os << "cross-check vs dcr-spy trace: prof issued=" << issued << " elided=" << elided
     << " decisions=" << decisions << " | spy issued=" << spy_issued
     << " elided=" << spy_elided << " -> " << (ok ? "OK" : "MISMATCH") << "\n";
  if (reissued_d > 0) {
    os << "  (excluded " << reissued_d << " decisions re-issued by SDC healing: "
       << reissued_f << " fences, " << reissued_e << " elisions)\n";
  }
  return ok;
}

int cmd_report(int argc, char** argv) {
  RunOptions opt;
  if (!parse_run_options(argc, argv, &opt)) return usage();

  sim::Machine machine({.num_nodes = opt.shards,
                        .compute_procs_per_node = 1,
                        .network = {.alpha = us(1), .ns_per_byte = 0.1}});
  core::FunctionRegistry functions;
  const core::ApplicationMain main_fn = make_app(opt, functions);
  if (!main_fn) return usage();
  core::DcrConfig cfg;
  cfg.profile = true;
  cfg.record_trace = true;  // ground truth for the fence/elision cross-check
  core::DcrRuntime rt(machine, functions, cfg);
  const core::DcrStats stats = rt.execute(main_fn);

  const prof::Report report = prof::build_report(rt.profiler());
  prof::render_report(std::cout, rt.profiler(), report, opt.top_k);
  std::cout << "\nmakespan: " << static_cast<double>(stats.makespan) / 1e6 << " ms ("
            << opt.app << ", " << opt.shards << " shards, " << opt.steps << " steps)\n";
  const bool checked = cross_check(rt, std::cout);

  if (!opt.snapshot_path.empty()) {
    std::ofstream out(opt.snapshot_path);
    if (!out) {
      std::cerr << "dcr-prof: cannot write " << opt.snapshot_path << "\n";
      return 2;
    }
    rt.profiler().write_snapshot_json(out, opt.zero_volatile);
    std::cout << "wrote counter snapshot -> " << opt.snapshot_path << "\n";
  }
  if (!stats.completed) {
    std::cerr << "dcr-prof: execution did not complete\n";
    return 1;
  }
  return checked ? 0 : 1;
}

int cmd_trace(int argc, char** argv) {
  RunOptions opt;
  if (!parse_run_options(argc, argv, &opt)) return usage();
  if (opt.out_path.empty()) opt.out_path = opt.app + ".prof.json";

  sim::Machine machine({.num_nodes = opt.shards,
                        .compute_procs_per_node = 1,
                        .network = {.alpha = us(1), .ns_per_byte = 0.1}});
  core::FunctionRegistry functions;
  const core::ApplicationMain main_fn = make_app(opt, functions);
  if (!main_fn) return usage();
  core::DcrConfig cfg;
  cfg.profile = true;
  core::DcrRuntime rt(machine, functions, cfg);
  const core::DcrStats stats = rt.execute(main_fn);

  std::ostringstream buf;
  rt.profiler().write_chrome_trace(buf);
  const std::vector<std::string> errors = prof::validate_chrome_trace(buf.str());
  for (const std::string& e : errors) std::cerr << "dcr-prof: schema: " << e << "\n";
  if (!errors.empty()) return 1;

  std::ofstream out(opt.out_path);
  if (!out) {
    std::cerr << "dcr-prof: cannot write " << opt.out_path << "\n";
    return 2;
  }
  out << buf.str();
  std::cout << "recorded " << rt.profiler().spans().size() << " spans over "
            << opt.shards << " shards -> " << opt.out_path
            << "\nopen in Perfetto: https://ui.perfetto.dev (Open trace file)"
            << (stats.completed ? "" : "\n(execution did not complete)") << "\n";
  return stats.completed ? 0 : 1;
}

int cmd_diff(const char* path_a, const char* path_b) {
  auto load = [](const char* path, prof::JsonValue* out) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "dcr-prof: cannot open " << path << "\n";
      return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    prof::JsonParseResult res = prof::parse_json(ss.str());
    if (!res.ok()) {
      std::cerr << "dcr-prof: " << path << ": " << res.error << "\n";
      return false;
    }
    *out = std::move(*res.value);
    return true;
  };
  prof::JsonValue a, b;
  if (!load(path_a, &a) || !load(path_b, &b)) return 2;
  const prof::SnapshotDiff d = prof::diff_snapshots(a, b);
  std::cout << "counter diff " << path_a << " -> " << path_b << ":\n";
  for (const auto& c : d.changed) {
    std::cout << "  " << c.key << ": " << c.a << " -> " << c.b << " ("
              << (c.b >= c.a ? "+" : "") << c.b - c.a << ")\n";
  }
  if (!d.added.empty()) {
    std::cout << "added in " << path_b << ":\n";
    for (const auto& k : d.added) std::cout << "  " << k << "\n";
  }
  if (!d.removed.empty()) {
    std::cout << "removed in " << path_b << ":\n";
    for (const auto& k : d.removed) std::cout << "  " << k << "\n";
  }
  if (!d.any()) {
    std::cout << "  (identical)\n";
    return 0;
  }
  std::cout << d.changed.size() << " changed, " << d.added.size() << " added, "
            << d.removed.size() << " removed\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "report") return cmd_report(argc - 2, argv + 2);
  if (cmd == "trace") return cmd_trace(argc - 2, argv + 2);
  if (cmd == "diff") {
    if (argc < 4) return usage();
    return cmd_diff(argv[2], argv[3]);
  }
  return usage();
}
