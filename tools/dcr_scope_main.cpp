// dcr-scope: cross-shard causal tracing, skew diagnosis, and live metrics.
// Subcommands:
//
//   dcr-scope blame <stencil|circuit|pennant> [--shards N] [--steps N]
//                   [--top K] [--json FILE] [--backend sim|threads]
//                   [--flight FILE]
//       Run the named app with causal tracing on and print the per-fence
//       blame report: for every non-elided fence, the last-releasing shard
//       and the fine-analysis span that released it, per-rank waits, and
//       round latency.  The report is reconciled against dcr-prof's
//       always-on fence ledger (issued + elided == decisions; per-shard
//       wait sums equal FenceWaitNs exactly).  Exit 0 iff reconciled.
//       With --backend threads the app runs on real OS threads
//       (exec::ThreadRuntime) and every time in the report is wall-clock
//       nanoseconds — the reconciliation is still exact because the same
//       clock reads feed both ledgers.  --flight arms the crash flight
//       recorder (a dump is only written on an aborted run).
//   dcr-scope skew <stencil|circuit|pennant> [--shards N] [--steps N]
//                  [--straggle SHARD:FACTOR] [--json FILE]
//                  [--backend sim|threads]
//       Print the shard-skew report: straggler ranking, critical shard per
//       epoch, wait-on-whom matrix.  --straggle slows one node down for the
//       whole run to demonstrate attribution (the slowed shard should top
//       the ranking); it is simulator-only (thread skew is real, not
//       injected, under --backend threads).
//   dcr-scope watch <stencil|circuit|pennant> [--shards N] [--steps N]
//                   [--interval-us U] [--out FILE] [--port P]
//                   [--backend sim|threads]
//       Run with a live MetricsRegistry exposed in Prometheus text format:
//       written to --out (default dcr_scope_metrics.prom) each tick and,
//       with --port, served from a minimal localhost HTTP endpoint while
//       the run lasts.  The cadence is virtual time on the simulator and
//       real wall-clock time (WallMetricsRefresher) under --backend
//       threads.
//   dcr-scope watch --check-baseline BASE.json --live LIVE.json
//                   [--threshold PCT] [--include-wall]
//       Regression watchdog: diff a live BENCH-style snapshot against a
//       committed baseline, record-by-record; exit nonzero on any relative
//       change beyond the threshold (default 5%).
//   dcr-scope quorum [--shards N] [--steps N] [--rate R] [--seed S]
//                    [--replicas K] [--quorum Q] [--top K] [--json FILE]
//       Run the traced stencil with a periodic control-feeding residual
//       reduction, SDC injection at rate R on residual tasks, and selective
//       task replication on — then print the quorum report: replica
//       disagreement counts, the re-execution latency histogram, and the
//       shard ranking of corruption sources.  Exit 0 iff the run completes
//       and every injected corruption on the control-feeding chain was
//       detected and healed.
//   dcr-scope trace [--shards N] [--steps N] [--phase-every K] [--json FILE]
//       Run the phase-changing stencil with the automatic trace identifier
//       on (and no explicit begin/end_trace anywhere) and print the detector
//       health report: repeats detected, traces promoted/demoted, windows
//       opened/aborted, fingerprint collisions, and the template window hit
//       rate.  Exit 0 iff the run completes, the counter ledger is
//       consistent, and at least one auto window replayed.
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "apps/circuit.hpp"
#include "apps/pennant.hpp"
#include "apps/stencil.hpp"
#include "dcr/runtime.hpp"
#include "exec/thread_runtime.hpp"
#include "scope/baseline.hpp"
#include "scope/http.hpp"
#include "scope/metrics.hpp"
#include "scope/report.hpp"
#include "sim/fault.hpp"

namespace {

using namespace dcr;

int usage() {
  std::cerr
      << "usage:\n"
      << "  dcr-scope blame <stencil|circuit|pennant> [--shards N] [--steps N]"
         " [--top K] [--json FILE] [--backend sim|threads] [--flight FILE]\n"
      << "  dcr-scope skew <stencil|circuit|pennant> [--shards N] [--steps N]"
         " [--straggle SHARD:FACTOR] [--json FILE] [--backend sim|threads]\n"
      << "  dcr-scope watch <stencil|circuit|pennant> [--shards N] [--steps N]"
         " [--interval-us U] [--out FILE] [--port P] [--backend sim|threads]\n"
      << "  dcr-scope watch --check-baseline BASE.json --live LIVE.json"
         " [--threshold PCT] [--include-wall]\n"
      << "  dcr-scope quorum [--shards N] [--steps N] [--rate R] [--seed S]"
         " [--replicas K] [--quorum Q] [--top K] [--json FILE]\n"
      << "  dcr-scope trace [--shards N] [--steps N] [--phase-every K]"
         " [--json FILE]\n";
  return 2;
}

struct RunOptions {
  std::string app;
  std::size_t shards = 4;
  std::size_t steps = 5;
  std::size_t top_k = 16;
  std::string json_path;
  std::string out_path;
  SimTime interval = us(500);
  int port = -1;
  std::size_t straggle_shard = ~0ull;
  double straggle_factor = 1.0;
  // Watchdog file-compare mode.
  std::string baseline_path;
  std::string live_path;
  double threshold_pct = 5.0;
  bool include_wall = false;
  // Quorum mode (SDC replication).
  double sdc_rate = 0.05;
  std::uint64_t seed = 42;
  std::uint32_t replicas = 2;
  std::uint32_t quorum = 2;
  // Trace mode (automatic trace identification).
  std::size_t phase_every = 8;
  // Execution backend: the virtual-time simulator or real OS threads.
  std::string backend = "sim";
  // Crash flight recorder dump path (threads backend only; dump written
  // only when the run aborts).
  std::string flight_path;
};

bool parse_run_options(int argc, char** argv, RunOptions* opt) {
  int i = 0;
  if (argc >= 1 && argv[0][0] != '-') opt->app = argv[i++];
  for (; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      opt->shards = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      opt->steps = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--top") == 0 && i + 1 < argc) {
      opt->top_k = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opt->json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opt->out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--interval-us") == 0 && i + 1 < argc) {
      opt->interval = us(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      opt->port = std::stoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--straggle") == 0 && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t colon = spec.find(':');
      if (colon == std::string::npos) return false;
      opt->straggle_shard = std::stoul(spec.substr(0, colon));
      opt->straggle_factor = std::stod(spec.substr(colon + 1));
      if (opt->straggle_factor < 1.0) return false;
    } else if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      opt->baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--live") == 0 && i + 1 < argc) {
      opt->live_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      opt->threshold_pct = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--include-wall") == 0) {
      opt->include_wall = true;
    } else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
      opt->sdc_rate = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt->seed = std::stoull(argv[++i]);
    } else if (std::strcmp(argv[i], "--replicas") == 0 && i + 1 < argc) {
      opt->replicas = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--quorum") == 0 && i + 1 < argc) {
      opt->quorum = static_cast<std::uint32_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--phase-every") == 0 && i + 1 < argc) {
      opt->phase_every = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      opt->backend = argv[++i];
      if (opt->backend != "sim" && opt->backend != "threads") return false;
    } else if (std::strcmp(argv[i], "--flight") == 0 && i + 1 < argc) {
      opt->flight_path = argv[++i];
    } else {
      return false;
    }
  }
  return true;
}

// The stencil runs traced (dependence templates on) so blame covers replayed
// spans too — the acceptance scenario is the 64-shard *traced* stencil.
core::ApplicationMain make_app(const RunOptions& opt,
                               core::FunctionRegistry& functions) {
  if (opt.app == "stencil") {
    const auto fns = apps::register_stencil_functions(functions, 1.0);
    return apps::make_stencil_app({.cells_per_tile = 128,
                                   .tiles = 2 * opt.shards,
                                   .steps = opt.steps,
                                   .use_trace = true},
                                  fns);
  }
  if (opt.app == "circuit") {
    const auto fns = apps::register_circuit_functions(functions, 1.0);
    return apps::make_circuit_app({.nodes_per_piece = 100,
                                   .wires_per_piece = 200,
                                   .pieces = 2 * opt.shards,
                                   .steps = opt.steps},
                                  fns);
  }
  if (opt.app == "pennant") {
    const auto fns = apps::register_pennant_functions(functions, 1.0);
    return apps::make_pennant_app(
        {.zones_per_piece = 200, .pieces = 2 * opt.shards, .cycles = opt.steps},
        fns);
  }
  return nullptr;
}

sim::MachineConfig machine_config(const RunOptions& opt) {
  return {.num_nodes = opt.shards,
          .compute_procs_per_node = 1,
          .network = {.alpha = us(1), .ns_per_byte = 0.1}};
}

exec::ThreadConfig thread_config(const RunOptions& opt) {
  exec::ThreadConfig cfg;
  cfg.num_shards = opt.shards;
  cfg.profile = true;
  cfg.scope = true;
  cfg.flight_path = opt.flight_path;
  return cfg;
}

int finish_blame(const RunOptions& opt, const scope::Recorder& rec,
                 const prof::Profiler& prof, const core::DcrStats& stats) {
  const scope::BlameReport report = scope::build_blame(rec, prof);
  scope::render_blame(std::cout, report, rec, opt.top_k);
  std::cout << "\nmakespan: " << static_cast<double>(stats.makespan) / 1e6
            << (opt.backend == "threads" ? " ms wall (" : " ms (") << opt.app
            << ", " << opt.shards << " shards, " << opt.steps << " steps, "
            << opt.backend << " backend)\n";

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    if (!out) {
      std::cerr << "dcr-scope: cannot write " << opt.json_path << "\n";
      return 2;
    }
    scope::write_blame_json(out, report);
    std::cout << "wrote blame report -> " << opt.json_path << "\n";
  }
  if (!stats.completed) {
    std::cerr << "dcr-scope: execution did not complete\n";
    return 1;
  }
  return report.reconciled() ? 0 : 1;
}

int cmd_blame(int argc, char** argv) {
  RunOptions opt;
  if (!parse_run_options(argc, argv, &opt) || opt.app.empty()) return usage();

  if (opt.backend == "threads") {
    core::FunctionRegistry functions;
    const core::ApplicationMain main_fn = make_app(opt, functions);
    if (!main_fn) return usage();
    exec::ThreadRuntime rt(functions, thread_config(opt));
    const core::DcrStats stats = rt.execute(main_fn);
    return finish_blame(opt, *rt.scope(), rt.profiler(), stats);
  }

  sim::Machine machine(machine_config(opt));
  core::FunctionRegistry functions;
  const core::ApplicationMain main_fn = make_app(opt, functions);
  if (!main_fn) return usage();
  core::DcrConfig cfg;
  cfg.profile = true;
  cfg.scope = true;
  core::DcrRuntime rt(machine, functions, cfg);
  const core::DcrStats stats = rt.execute(main_fn);
  return finish_blame(opt, *rt.scope(), rt.profiler(), stats);
}

int cmd_skew(int argc, char** argv) {
  RunOptions opt;
  if (!parse_run_options(argc, argv, &opt) || opt.app.empty()) return usage();

  if (opt.backend == "threads") {
    if (opt.straggle_shard != ~0ull) {
      std::cerr << "dcr-scope: --straggle is simulator-only (thread skew is"
                   " real, not injected)\n";
      return 2;
    }
    core::FunctionRegistry functions;
    const core::ApplicationMain main_fn = make_app(opt, functions);
    if (!main_fn) return usage();
    exec::ThreadRuntime rt(functions, thread_config(opt));
    const core::DcrStats stats = rt.execute(main_fn);

    const scope::SkewReport report = scope::build_skew(*rt.scope());
    scope::render_skew(std::cout, report);
    std::cout << "makespan: " << static_cast<double>(stats.makespan) / 1e6
              << " ms wall (threads backend)\n";
    if (!opt.json_path.empty()) {
      std::ofstream out(opt.json_path);
      if (!out) {
        std::cerr << "dcr-scope: cannot write " << opt.json_path << "\n";
        return 2;
      }
      scope::write_skew_json(out, report);
      std::cout << "wrote skew report -> " << opt.json_path << "\n";
    }
    return stats.completed ? 0 : 1;
  }

  sim::Machine machine(machine_config(opt));
  sim::FaultConfig fc;
  if (opt.straggle_shard != ~0ull) {
    if (opt.straggle_shard >= opt.shards) {
      std::cerr << "dcr-scope: --straggle shard out of range\n";
      return 2;
    }
    fc.slowdowns.push_back({NodeId(static_cast<std::uint32_t>(opt.straggle_shard)),
                            0, kTimeNever, opt.straggle_factor});
  }
  sim::FaultPlan faults(fc);
  if (!fc.slowdowns.empty()) machine.install_faults(faults);
  core::FunctionRegistry functions;
  const core::ApplicationMain main_fn = make_app(opt, functions);
  if (!main_fn) return usage();
  core::DcrConfig cfg;
  cfg.profile = true;
  cfg.scope = true;
  core::DcrRuntime rt(machine, functions, cfg);
  const core::DcrStats stats = rt.execute(main_fn);

  const scope::SkewReport report = scope::build_skew(*rt.scope());
  scope::render_skew(std::cout, report);
  if (opt.straggle_shard != ~0ull) {
    std::cout << "(injected straggler: shard " << opt.straggle_shard << " at "
              << opt.straggle_factor << "x)\n";
  }
  std::cout << "makespan: " << static_cast<double>(stats.makespan) / 1e6
            << " ms\n";

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    if (!out) {
      std::cerr << "dcr-scope: cannot write " << opt.json_path << "\n";
      return 2;
    }
    scope::write_skew_json(out, report);
    std::cout << "wrote skew report -> " << opt.json_path << "\n";
  }
  return stats.completed ? 0 : 1;
}

int cmd_watch(int argc, char** argv) {
  RunOptions opt;
  if (!parse_run_options(argc, argv, &opt)) return usage();

  // File-compare mode: the regression watchdog.
  if (!opt.baseline_path.empty() || !opt.live_path.empty()) {
    if (opt.baseline_path.empty() || opt.live_path.empty()) return usage();
    const scope::BaselineDiff d = scope::check_baseline_files(
        opt.baseline_path, opt.live_path, opt.threshold_pct, opt.include_wall);
    scope::render_baseline_diff(std::cout, d, opt.threshold_pct);
    return d.ok() ? 0 : 1;
  }

  if (opt.app.empty()) return usage();
  if (opt.out_path.empty()) opt.out_path = "dcr_scope_metrics.prom";

  if (opt.backend == "threads") {
    core::FunctionRegistry functions;
    const core::ApplicationMain main_fn = make_app(opt, functions);
    if (!main_fn) return usage();
    exec::ThreadRuntime rt(functions, thread_config(opt));

    std::unique_ptr<scope::MetricsHttpServer> http;
    if (opt.port >= 0) {
      http = std::make_unique<scope::MetricsHttpServer>(
          static_cast<std::uint16_t>(opt.port));
      if (!http->ok()) {
        std::cerr << "dcr-scope: cannot bind 127.0.0.1:" << opt.port << ": "
                  << http->error() << "\n";
        return 2;
      }
      std::cout << "serving metrics at http://127.0.0.1:" << http->port()
                << "/ for the duration of the run\n";
    }

    scope::WallMetricsRefresher::Options ropts;
    ropts.interval_ns = opt.interval;
    ropts.out_path = opt.out_path;
    if (http) {
      ropts.sink = [&http](const std::string& text) { http->set_body(text); };
    }
    // Live collection: prof counter banks and the Recorder's atomic counts
    // are safe concurrently with the running shard fleet; merged ledger
    // views are not (collect_metrics only touches the former).
    scope::WallMetricsRefresher refresher(
        ropts, [&rt](scope::MetricsRegistry& reg) {
          scope::collect_metrics(reg, {.prof = &rt.profiler(),
                                       .machine = nullptr,
                                       .recorder = rt.scope(),
                                       .now = 0,
                                       .makespan = 0});
        });
    refresher.start();
    const core::DcrStats stats = rt.execute(main_fn);
    refresher.stop();  // joins, then one final tick covering the whole run

    // Final snapshot with the makespan stamped in.
    scope::MetricsRegistry reg;
    scope::collect_metrics(reg, {.prof = &rt.profiler(),
                                 .machine = nullptr,
                                 .recorder = rt.scope(),
                                 .now = stats.makespan,
                                 .makespan = stats.makespan});
    std::ofstream out(opt.out_path);
    if (!out) {
      std::cerr << "dcr-scope: cannot write " << opt.out_path << "\n";
      return 2;
    }
    reg.write_prometheus(out);
    if (http) http->set_body(reg.prometheus_text());

    std::cout << "exposed " << refresher.ticks() << " snapshots at "
              << static_cast<double>(opt.interval) / 1e3
              << " us wall cadence -> " << opt.out_path << "\nmakespan: "
              << static_cast<double>(stats.makespan) / 1e6
              << " ms wall (threads backend)\n";
    return stats.completed ? 0 : 1;
  }

  sim::Machine machine(machine_config(opt));
  core::FunctionRegistry functions;
  const core::ApplicationMain main_fn = make_app(opt, functions);
  if (!main_fn) return usage();
  core::DcrConfig cfg;
  cfg.profile = true;
  cfg.scope = true;
  core::DcrRuntime rt(machine, functions, cfg);

  std::unique_ptr<scope::MetricsHttpServer> http;
  if (opt.port >= 0) {
    http = std::make_unique<scope::MetricsHttpServer>(
        static_cast<std::uint16_t>(opt.port));
    if (!http->ok()) {
      std::cerr << "dcr-scope: cannot bind 127.0.0.1:" << opt.port << ": "
                << http->error() << "\n";
      return 2;
    }
    std::cout << "serving metrics at http://127.0.0.1:" << http->port()
              << "/ for the duration of the run\n";
  }

  scope::MetricsExposer::Options eopts;
  eopts.interval = opt.interval;
  eopts.out_path = opt.out_path;
  if (http) {
    eopts.sink = [&http](const std::string& text) { http->set_body(text); };
  }
  // Stop ticking once every shard is done, else the periodic process would
  // keep the simulation calendar alive forever.
  eopts.done = [&rt] { return rt.finished(); };
  scope::MetricsExposer exposer(
      machine.sim(), eopts, [&rt, &machine](scope::MetricsRegistry& reg) {
        scope::collect_metrics(reg, {.prof = &rt.profiler(),
                                     .machine = &machine,
                                     .recorder = rt.scope(),
                                     .now = machine.sim().now(),
                                     .makespan = 0});
      });
  exposer.start();
  const core::DcrStats stats = rt.execute(main_fn);

  // Final snapshot with the makespan stamped in.
  scope::MetricsRegistry reg;
  scope::collect_metrics(reg, {.prof = &rt.profiler(),
                               .machine = &machine,
                               .recorder = rt.scope(),
                               .now = stats.makespan,
                               .makespan = stats.makespan});
  std::ofstream out(opt.out_path);
  if (!out) {
    std::cerr << "dcr-scope: cannot write " << opt.out_path << "\n";
    return 2;
  }
  reg.write_prometheus(out);
  if (http) http->set_body(reg.prometheus_text());

  std::cout << "exposed " << exposer.ticks() << " snapshots at "
            << static_cast<double>(opt.interval) / 1e3 << " us cadence -> "
            << opt.out_path << "\nmakespan: "
            << static_cast<double>(stats.makespan) / 1e6 << " ms\n";
  return stats.completed ? 0 : 1;
}

// The acceptance scenario: the traced stencil with a per-step control-feeding
// residual reduction, SDC injection on the residual tasks, and selective
// replication verifying every control-feeding value by quorum.
int cmd_quorum(int argc, char** argv) {
  RunOptions opt;
  if (!parse_run_options(argc, argv, &opt)) return usage();
  if (!opt.app.empty() && opt.app != "stencil") {
    std::cerr << "dcr-scope: quorum runs the stencil only\n";
    return 2;
  }

  sim::Machine machine(machine_config(opt));
  sim::FaultConfig fc;
  fc.seed = opt.seed;
  fc.sdc.rate = opt.sdc_rate;
  sim::FaultPlan faults(fc);
  machine.install_faults(faults);

  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  const core::ApplicationMain main_fn =
      apps::make_stencil_app({.cells_per_tile = 128,
                              .tiles = 2 * opt.shards,
                              .steps = opt.steps,
                              .use_trace = true,
                              .residual_every = 1},
                             fns);

  core::DcrConfig cfg;
  cfg.profile = true;
  cfg.scope = true;
  cfg.sdc_replication = true;
  cfg.sdc_replicas = opt.replicas;
  cfg.sdc_quorum = opt.quorum;
  core::DcrRuntime rt(machine, functions, cfg);
  const core::DcrStats stats = rt.execute(main_fn);

  const scope::QuorumReport report = scope::build_quorum(*rt.scope(), opt.top_k);
  scope::render_quorum(std::cout, report);
  std::cout << "\ninjection: rate " << opt.sdc_rate << ", seed " << opt.seed
            << " -> " << stats.sdc_corruptions_injected << " injected, "
            << stats.sdc_corruptions_detected << " detected, "
            << stats.sdc_corruptions_healed << " quorums healed\n"
            << "replication: " << stats.sdc_tainted_ops << " tainted ops, "
            << stats.sdc_tickets << " tickets, " << stats.sdc_replicas_issued
            << " replicas issued\nmakespan: "
            << static_cast<double>(stats.makespan) / 1e6 << " ms\n";

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    if (!out) {
      std::cerr << "dcr-scope: cannot write " << opt.json_path << "\n";
      return 2;
    }
    scope::write_quorum_json(out, report);
    std::cout << "wrote quorum report -> " << opt.json_path << "\n";
  }
  if (!stats.completed) {
    std::cerr << "dcr-scope: execution did not complete\n";
    return 1;
  }
  return stats.sdc_corruptions_detected == stats.sdc_corruptions_injected ? 0 : 1;
}

// Automatic trace identification report: run the phase-changing stencil with
// the detector on (no explicit begin/end_trace anywhere) and print per-shard
// detector health + the template window hit rate.  Exit 0 iff the run
// completes, the ledger invariants hold, and at least one window replayed.
int cmd_trace(int argc, char** argv) {
  RunOptions opt;
  opt.steps = 48;
  if (!parse_run_options(argc, argv, &opt)) return usage();
  if (!opt.app.empty() && opt.app != "stencil") {
    std::cerr << "dcr-scope: trace runs the stencil only\n";
    return 2;
  }

  sim::Machine machine(machine_config(opt));
  core::FunctionRegistry functions;
  const auto fns = apps::register_stencil_functions(functions, 1.0);
  apps::StencilConfig scfg{.cells_per_tile = 128, .tiles = opt.shards,
                           .steps = opt.steps};
  scfg.phase_every = opt.phase_every;
  const core::ApplicationMain main_fn = apps::make_stencil_app(scfg, fns);

  core::DcrConfig cfg;
  cfg.profile = true;
  cfg.scope = true;
  cfg.auto_trace.enabled = true;
  cfg.auto_trace.min_period = 2;
  cfg.auto_trace.probe = 6;
  cfg.auto_trace.promote_periods = 1;
  core::DcrRuntime rt(machine, functions, cfg);
  const core::DcrStats stats = rt.execute(main_fn);

  const scope::TraceIdReport report = scope::build_trace_id(rt.profiler());
  scope::render_trace_id(std::cout, report);
  std::cout << "\nphase change every " << opt.phase_every << " steps, "
            << stats.ops_issued << " ops/shard, " << stats.traced_ops
            << " ops replayed from templates\nmakespan: "
            << static_cast<double>(stats.makespan) / 1e6 << " ms\n";

  if (!opt.json_path.empty()) {
    std::ofstream out(opt.json_path);
    if (!out) {
      std::cerr << "dcr-scope: cannot write " << opt.json_path << "\n";
      return 2;
    }
    scope::write_trace_id_json(out, report);
    std::cout << "wrote trace report -> " << opt.json_path << "\n";
  }
  if (!stats.completed) {
    std::cerr << "dcr-scope: execution did not complete\n";
    return 1;
  }
  return (report.consistent && report.total.window_hits > 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "blame") return cmd_blame(argc - 2, argv + 2);
  if (cmd == "skew") return cmd_skew(argc - 2, argv + 2);
  if (cmd == "watch") return cmd_watch(argc - 2, argv + 2);
  if (cmd == "quorum") return cmd_quorum(argc - 2, argv + 2);
  if (cmd == "trace") return cmd_trace(argc - 2, argv + 2);
  return usage();
}
