// dcr-spy: offline trace verifier CLI (the Legion Spy analogue for this
// runtime).  Subcommands:
//
//   dcr-spy record <stencil|circuit|pennant> [--shards N] [--out FILE]
//                  [--disable-fence-elision]
//       Run the named app under DCR with trace recording and write the
//       JSONL trace (default: <app>.trace.jsonl).
//   dcr-spy verify <trace.jsonl>
//       Run every check: graph ≡ DEPseq, region races, elision audit,
//       control-determinism lint.  Exit 0 if clean, 1 if findings.
//   dcr-spy lint <trace.jsonl>
//       Control-determinism linter only.
//   dcr-spy dot <trace.jsonl>
//       Dump the recorded task graph as Graphviz DOT on stdout.
//   dcr-spy statics <stencil|circuit|pennant> [--shards N] [--hot N]
//       Run the named app with static interference analysis on, then lint the
//       launch-site ledger: non-injective write projections, aliased writes,
//       dead partitions, privilege over-claims, opaque hot projections.
//       Exit 1 on race-class findings (non-injective/aliased writes).
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "apps/circuit.hpp"
#include "apps/pennant.hpp"
#include "apps/stencil.hpp"
#include "dcr/runtime.hpp"
#include "runtime/graph_dump.hpp"
#include "statics/lint.hpp"
#include "spy/trace.hpp"
#include "spy/verify.hpp"

namespace {

int usage() {
  std::cerr << "usage:\n"
            << "  dcr-spy record <stencil|circuit|pennant> [--shards N] [--out FILE]"
               " [--disable-fence-elision]\n"
            << "  dcr-spy verify <trace.jsonl>\n"
            << "  dcr-spy lint <trace.jsonl>\n"
            << "  dcr-spy dot <trace.jsonl>\n"
            << "  dcr-spy statics <stencil|circuit|pennant> [--shards N] [--hot N]\n";
  return 2;
}

bool load_trace(const char* path, dcr::spy::Trace* trace) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "dcr-spy: cannot open " << path << "\n";
    return false;
  }
  std::string error;
  if (!dcr::spy::Trace::read_jsonl(in, trace, &error)) {
    std::cerr << "dcr-spy: " << path << ": " << error << "\n";
    return false;
  }
  return true;
}

int cmd_record(int argc, char** argv) {
  using namespace dcr;
  if (argc < 1) return usage();
  const std::string app = argv[0];
  std::size_t shards = 4;
  std::string out_path = app + ".trace.jsonl";
  core::DcrConfig cfg;
  cfg.record_trace = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--disable-fence-elision") == 0) {
      cfg.disable_fence_elision = true;
    } else {
      return usage();
    }
  }

  sim::Machine machine({.num_nodes = shards,
                        .compute_procs_per_node = 1,
                        .network = {.alpha = us(1), .ns_per_byte = 0.1}});
  core::FunctionRegistry functions;
  core::ApplicationMain main_fn;
  if (app == "stencil") {
    const auto fns = apps::register_stencil_functions(functions, 1.0);
    main_fn = apps::make_stencil_app(
        {.cells_per_tile = 128, .tiles = 2 * shards, .steps = 5}, fns);
  } else if (app == "circuit") {
    const auto fns = apps::register_circuit_functions(functions, 1.0);
    main_fn = apps::make_circuit_app(
        {.nodes_per_piece = 100, .wires_per_piece = 200, .pieces = 2 * shards, .steps = 5},
        fns);
  } else if (app == "pennant") {
    const auto fns = apps::register_pennant_functions(functions, 1.0);
    main_fn = apps::make_pennant_app(
        {.zones_per_piece = 200, .pieces = 2 * shards, .cycles = 5}, fns);
  } else {
    return usage();
  }

  core::DcrRuntime rt(machine, functions, cfg);
  const core::DcrStats stats = rt.execute(main_fn);
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "dcr-spy: cannot write " << out_path << "\n";
    return 2;
  }
  rt.trace()->write_jsonl(out);
  std::cout << "recorded " << app << " at " << shards << " shards: "
            << rt.trace()->num_events() << " events -> " << out_path
            << (stats.completed ? "" : " (execution did not complete)") << "\n";
  return stats.completed ? 0 : 1;
}

int cmd_verify(const char* path) {
  dcr::spy::Trace trace;
  if (!load_trace(path, &trace)) return 2;
  const dcr::spy::VerifyReport report = dcr::spy::verify(trace);
  std::cout << report.summary() << "\n";
  for (const auto& f : report.findings) {
    std::cout << "  [" << dcr::spy::to_string(f.kind) << "] " << f.message << "\n";
  }
  return report.ok() ? 0 : 1;
}

int cmd_lint(const char* path) {
  dcr::spy::Trace trace;
  if (!load_trace(path, &trace)) return 2;
  const dcr::spy::LintResult lint = dcr::spy::lint_control_determinism(trace);
  if (!lint.divergent) {
    std::cout << "OK: " << trace.num_shards << " shard call streams are replicated\n";
    return 0;
  }
  std::cout << lint.message << "\n";
  return 1;
}

int cmd_dot(const char* path) {
  dcr::spy::Trace trace;
  if (!load_trace(path, &trace)) return 2;
  dcr::rt::TaskGraph graph;
  for (const auto& t : trace.tasks) graph.add_task(t.id);
  for (const auto& e : trace.edges) {
    if (graph.has_task(e.from) && graph.has_task(e.to) && !graph.has_edge(e.from, e.to)) {
      graph.add_edge(e.from, e.to);
    }
  }
  dcr::rt::write_dot(std::cout, graph);
  return 0;
}

int cmd_statics(int argc, char** argv) {
  using namespace dcr;
  if (argc < 1) return usage();
  const std::string app = argv[0];
  std::size_t shards = 4;
  std::uint64_t hot = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (std::strcmp(argv[i], "--hot") == 0 && i + 1 < argc) {
      hot = std::stoull(argv[++i]);
    } else {
      return usage();
    }
  }

  sim::Machine machine({.num_nodes = shards,
                        .compute_procs_per_node = 1,
                        .network = {.alpha = us(1), .ns_per_byte = 0.1}});
  core::FunctionRegistry functions;
  core::ApplicationMain main_fn;
  core::DcrConfig cfg;
  cfg.static_analysis = true;
  if (app == "stencil") {
    const auto fns = apps::register_stencil_functions(functions, 1.0);
    main_fn = apps::make_stencil_app(
        {.cells_per_tile = 128, .tiles = 2 * shards, .steps = 5}, fns);
  } else if (app == "circuit") {
    const auto fns = apps::register_circuit_functions(functions, 1.0);
    main_fn = apps::make_circuit_app(
        {.nodes_per_piece = 100, .wires_per_piece = 200, .pieces = 2 * shards, .steps = 5},
        fns);
  } else if (app == "pennant") {
    const auto fns = apps::register_pennant_functions(functions, 1.0);
    main_fn = apps::make_pennant_app(
        {.zones_per_piece = 200, .pieces = 2 * shards, .cycles = 5}, fns);
  } else {
    return usage();
  }

  core::DcrRuntime rt(machine, functions, cfg);
  const core::DcrStats stats = rt.execute(main_fn);
  if (!stats.completed) {
    std::cerr << "dcr-spy: " << app << " did not complete: " << stats.abort_message
              << "\n";
    return 2;
  }
  std::cout << app << " at " << shards << " shards: "
            << rt.statics_ledger().total_launch_reqs() << " launch requirements over "
            << rt.statics_ledger().sites().size() << " sites; "
            << stats.statics_resolved_ops << " launches statically resolved, "
            << stats.statics_unresolved_ops << " unresolved, "
            << stats.statics_skipped_points << " points skipped\n";
  const auto findings =
      dcr::statics::lint(rt.forest(), rt.projections(), rt.statics_ledger(), hot);
  bool race = false;
  for (const auto& f : findings) {
    std::cout << "  [" << dcr::statics::to_string(f.kind) << "] " << f.message << "\n";
    race = race || dcr::statics::is_race_class(f.kind);
  }
  if (findings.empty()) std::cout << "  no findings\n";
  return race ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  if (cmd == "record") return cmd_record(argc - 2, argv + 2);
  if (cmd == "verify") return cmd_verify(argv[2]);
  if (cmd == "lint") return cmd_lint(argv[2]);
  if (cmd == "dot") return cmd_dot(argv[2]);
  if (cmd == "statics") return cmd_statics(argc - 2, argv + 2);
  return usage();
}
